#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace adsynth::util {
namespace {

TEST(SplitMix64, AdvancesStateAndMatchesReference) {
  // Reference values for seed 0 from the splitmix64 reference code.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Mix64, IsStatelessAndDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), std::invalid_argument);
}

TEST(Rng, UniformCoversFullRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(13);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.uniform(0, 9)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, RealIsInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, kDraws / 4, kDraws / 100);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent.next() == child.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(41);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  std::vector<int> pool(50);
  std::iota(pool.begin(), pool.end(), 0);
  const std::vector<int> sample = rng.sample(pool, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(Rng, SampleClampedToPopulation) {
  Rng rng(47);
  std::vector<int> pool{1, 2, 3};
  const std::vector<int> sample = rng.sample(pool, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(Rng, SampleIndicesDistinctBothPaths) {
  Rng rng(53);
  // Sparse path (Floyd).
  auto sparse = rng.sample_indices(10000, 10);
  std::set<std::size_t> s1(sparse.begin(), sparse.end());
  EXPECT_EQ(s1.size(), 10u);
  for (const std::size_t i : sparse) EXPECT_LT(i, 10000u);
  // Dense path (partial Fisher-Yates).
  auto dense = rng.sample_indices(20, 15);
  std::set<std::size_t> s2(dense.begin(), dense.end());
  EXPECT_EQ(s2.size(), 15u);
  for (const std::size_t i : dense) EXPECT_LT(i, 20u);
}

TEST(Rng, SampleIndicesZeroAndAll) {
  Rng rng(59);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
  auto all = rng.sample_indices(5, 5);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// Property sweep: sample_indices never repeats, for many (n, k) shapes.
class SampleIndicesProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleIndicesProperty, DistinctInRange) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  const auto sample = rng.sample_indices(n, k);
  EXPECT_EQ(sample.size(), std::min(n, k));
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
  for (const std::size_t i : sample) EXPECT_LT(i, n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleIndicesProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{100, 1},
                      std::pair<std::size_t, std::size_t>{100, 99},
                      std::pair<std::size_t, std::size_t>{100, 100},
                      std::pair<std::size_t, std::size_t>{1000, 5},
                      std::pair<std::size_t, std::size_t>{1000, 500},
                      std::pair<std::size_t, std::size_t>{65536, 17}));

TEST(RngStream, IndependentOfCallOrder) {
  // The substream contract: stream(id) depends on (seed, id) only —
  // unlike fork(), whose children depend on how far the parent advanced.
  Rng a(42);
  Rng b(42);
  // Advance `b` arbitrarily; its streams must still match `a`'s.
  for (int i = 0; i < 1000; ++i) b.next();
  for (const std::uint64_t id : {0ULL, 1ULL, 7ULL, 1ULL << 40}) {
    Rng sa = a.stream(id);
    Rng sb = b.stream(id);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(sa.next(), sb.next()) << "stream " << id;
    }
  }
}

TEST(RngStream, DistinctIdsDecorrelate) {
  Rng root(7);
  Rng s0 = root.stream(0);
  Rng s1 = root.stream(1);
  std::size_t equal = 0;
  for (int i = 0; i < 256; ++i) equal += s0.next() == s1.next() ? 1 : 0;
  EXPECT_EQ(equal, 0u);
  // Neighbouring ids (the sharded generator uses consecutive ordinals).
  Rng a = root.stream(1000);
  Rng b = root.stream(1001);
  equal = 0;
  for (int i = 0; i < 256; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(equal, 0u);
}

TEST(RngStream, DiffersFromRootAndAcrossSeeds) {
  Rng root(9);
  Rng stream = root.stream(3);
  Rng fresh(9);
  std::size_t equal = 0;
  for (int i = 0; i < 256; ++i) equal += stream.next() == fresh.next() ? 1 : 0;
  EXPECT_EQ(equal, 0u);
  // Same stream id under different seeds must diverge too.
  Rng other = Rng(10).stream(3);
  Rng again = Rng(9).stream(3);
  EXPECT_NE(other.next(), again.next());
}

TEST(SampleScratchSuite, MatchesLegacySampleIndices) {
  // The scratch-based overload must replay the legacy allocation-heavy
  // version draw for draw — same RNG consumption, same output order.
  for (const auto& [n, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {100, 3}, {100, 90}, {4096, 16}, {4096, 2000},
           {100000, 12}}) {
    Rng legacy(n * 31 + k);
    Rng scratched(n * 31 + k);
    const auto expected = legacy.sample_indices(n, k);
    SampleScratch scratch;
    std::vector<std::size_t> got;
    scratched.sample_indices(n, k, scratch, got);
    EXPECT_EQ(got, expected) << "n=" << n << " k=" << k;
    // The generators consume afterwards; both must leave the engine in the
    // same state.
    EXPECT_EQ(legacy.next(), scratched.next());
  }
}

TEST(SampleScratchSuite, ReuseAcrossMixedShapes) {
  // One scratch object serves interleaved sparse and dense calls (the
  // session hot loop reuses it for every user) without cross-talk.
  SampleScratch scratch;
  std::vector<std::size_t> out;
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 16 + static_cast<std::size_t>(rng.uniform(0, 4000));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform(0, n - 1));
    rng.sample_indices(n, k, scratch, out);
    ASSERT_EQ(out.size(), k);
    std::set<std::size_t> unique(out.begin(), out.end());
    ASSERT_EQ(unique.size(), out.size()) << "round " << round;
    for (const std::size_t i : out) ASSERT_LT(i, n);
  }
}

TEST(SampleScratchSuite, KZeroAndKGreaterEqualN) {
  SampleScratch scratch;
  std::vector<std::size_t> out{1, 2, 3};
  Rng rng(5);
  rng.sample_indices(10, 0, scratch, out);
  EXPECT_TRUE(out.empty());
  rng.sample_indices(4, 9, scratch, out);
  EXPECT_EQ(out.size(), 4u);
  std::set<std::size_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 4u);
}

}  // namespace
}  // namespace adsynth::util
