#include "util/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adsynth::util {
namespace {

TEST(JsonValue, ScalarsRoundTrip) {
  EXPECT_EQ(JsonValue::parse("null").dump(), "null");
  EXPECT_EQ(JsonValue::parse("true").dump(), "true");
  EXPECT_EQ(JsonValue::parse("false").dump(), "false");
  EXPECT_EQ(JsonValue::parse("42").dump(), "42");
  EXPECT_EQ(JsonValue::parse("-7").dump(), "-7");
  EXPECT_EQ(JsonValue::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(JsonValue, NumbersClassifiedIntOrDouble) {
  EXPECT_TRUE(JsonValue::parse("3").is_int());
  EXPECT_TRUE(JsonValue::parse("3.5").is_double());
  EXPECT_TRUE(JsonValue::parse("3e2").is_double());
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3").as_double(), 3.0);  // widening
  EXPECT_EQ(JsonValue::parse("9223372036854775807").as_int(),
            9223372036854775807LL);
}

TEST(JsonValue, NestedStructuresRoundTrip) {
  const std::string doc =
      R"({"a":[1,2,{"b":null}],"c":{"d":true,"e":"x"}})";
  EXPECT_EQ(JsonValue::parse(doc).dump(), doc);
}

TEST(JsonValue, ObjectAccessors) {
  const JsonValue v = JsonValue::parse(R"({"name":"DA","count":3})");
  EXPECT_TRUE(v.contains("name"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_EQ(v.at("name").as_string(), "DA");
  EXPECT_EQ(v.at("count").as_int(), 3);
  EXPECT_THROW(v.at("missing"), std::out_of_range);
  EXPECT_THROW(v.at("name").as_int(), std::runtime_error);
}

TEST(JsonValue, StringEscapesRoundTrip) {
  const JsonValue v("a\"b\\c\nd\te\x01");
  const std::string dumped = v.dump();
  EXPECT_EQ(JsonValue::parse(dumped).as_string(), v.as_string());
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
}

TEST(JsonValue, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonValue, ParseErrors) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), std::runtime_error);
}

TEST(JsonValue, WhitespaceTolerated) {
  const JsonValue v = JsonValue::parse("  {\n\t\"a\" :\r [ 1 , 2 ]  }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonValue, ObjectKeysSortedInDump) {
  JsonObject o;
  o["b"] = JsonValue(1);
  o["a"] = JsonValue(2);
  EXPECT_EQ(JsonValue(std::move(o)).dump(), R"({"a":2,"b":1})");
}

TEST(JsonValue, WholeValuedDoublesKeepTypeThroughDump) {
  // A double that happens to hold an integral value must not collapse to
  // an int on re-parse: dump() forces a '.0' marker when %.17g emits none.
  EXPECT_EQ(JsonValue(2.0).dump(), "2.0");
  EXPECT_EQ(JsonValue(-3.0).dump(), "-3.0");
  EXPECT_TRUE(JsonValue::parse(JsonValue(2.0).dump()).is_double());
  EXPECT_TRUE(JsonValue::parse(JsonValue(1e6).dump()).is_double());
  EXPECT_TRUE(JsonValue::parse(JsonValue(1e21).dump()).is_double());  // 1e+21
  EXPECT_EQ(JsonValue(3.5).dump(), "3.5");  // fractional path unchanged
}

TEST(JsonValue, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(JsonWriter, StreamsNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("type", "node");
  w.member("id", std::int64_t{7});
  w.key("labels");
  w.begin_array();
  w.value("User");
  w.value("Base");
  w.end_array();
  w.key("props");
  w.begin_object();
  w.member("enabled", true);
  w.member("score", 1.5);
  w.member("none", nullptr);
  w.end_object();
  w.end_object();
  const JsonValue parsed = JsonValue::parse(out.str());
  EXPECT_EQ(parsed.at("type").as_string(), "node");
  EXPECT_EQ(parsed.at("id").as_int(), 7);
  EXPECT_EQ(parsed.at("labels").as_array().size(), 2u);
  EXPECT_TRUE(parsed.at("props").at("enabled").as_bool());
  EXPECT_TRUE(parsed.at("props").at("none").is_null());
}

TEST(JsonWriter, WholeValuedDoublesKeepTypeThroughStream) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("weight", 2.0);
  w.end_object();
  EXPECT_TRUE(JsonValue::parse(out.str()).at("weight").is_double());
}

TEST(JsonWriter, RejectsMisuse) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);       // value without key
  w.key("a");
  EXPECT_THROW(w.key("b"), std::logic_error);       // consecutive keys
  w.value(1);
  EXPECT_THROW(w.end_array(), std::logic_error);    // mismatched close
  w.end_object();
}

TEST(JsonWriter, KeyOutsideObjectThrows) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  EXPECT_THROW(w.key("a"), std::logic_error);
}

TEST(JsonEscape, ControlCharactersEscaped) {
  std::string out;
  json_escape("a\x02z", out);
  EXPECT_EQ(out, "\"a\\u0002z\"");
}

}  // namespace
}  // namespace adsynth::util
