// Tests for the DBCreator / ADSimulator ports and the University reference.
#include <gtest/gtest.h>

#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "analytics/sessions.hpp"
#include "adcore/convert.hpp"
#include "baselines/adsimulator.hpp"
#include "baselines/dbcreator.hpp"
#include "baselines/university.hpp"
#include "util/timer.hpp"

namespace adsynth::baselines {
namespace {

using adcore::AttackGraph;
using adcore::ObjectKind;

TEST(DbCreator, ProducesExpectedMix) {
  DbCreatorConfig cfg;
  cfg.target_nodes = 1000;
  const BaselineRun run = run_dbcreator(cfg);
  EXPECT_NEAR(static_cast<double>(run.store.node_count()), 1000.0, 30.0);
  EXPECT_GT(run.statements, run.store.node_count());  // 1 txn per object+edge
  const AttackGraph g = adcore::from_store(run.store);
  EXPECT_NE(g.domain_admins(), adcore::kNoNodeIndex);
  EXPECT_NEAR(static_cast<double>(g.nodes_of_kind(ObjectKind::kUser).size()),
              480.0, 30.0);
  EXPECT_GT(g.nodes_of_kind(ObjectKind::kComputer).size(), 250u);
  EXPECT_GT(g.nodes_of_kind(ObjectKind::kGroup).size(), 100u);
}

TEST(DbCreator, DeterministicForSeed) {
  DbCreatorConfig cfg;
  cfg.target_nodes = 300;
  const AttackGraph a = dbcreator_graph(cfg);
  const AttackGraph b = dbcreator_graph(cfg);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edges(), b.edges());
  cfg.seed = 2;
  const AttackGraph c = dbcreator_graph(cfg);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(DbCreator, RandomAclsConnectUsersToDa) {
  // The paper's point: random assignment floods the graph with attack
  // paths — a substantial share of users reaches Domain Admins.
  DbCreatorConfig cfg;
  cfg.target_nodes = 2000;
  const AttackGraph g = dbcreator_graph(cfg);
  const auto reach = analytics::users_reaching_da(g);
  EXPECT_GT(reach.fraction, 0.05);
}

TEST(AdSimulator, ProducesExpectedMixWithIndexes) {
  AdSimulatorConfig cfg;
  cfg.target_nodes = 1000;
  const BaselineRun run = run_adsimulator(cfg);
  EXPECT_NEAR(static_cast<double>(run.store.node_count()), 1000.0, 40.0);
  const AttackGraph g = adcore::from_store(run.store);
  EXPECT_NE(g.domain_admins(), adcore::kNoNodeIndex);
  EXPECT_GT(g.nodes_of_kind(ObjectKind::kOU).size(), 0u);
  // Every user is in Domain Users, plus random memberships.
  const auto users = g.nodes_of_kind(ObjectKind::kUser).size();
  std::size_t member_of = 0;
  for (const auto& e : g.edges()) {
    member_of += e.kind == adcore::EdgeKind::kMemberOf ? 1 : 0;
  }
  EXPECT_GE(member_of, users);
}

TEST(AdSimulator, DeterministicForSeed) {
  AdSimulatorConfig cfg;
  cfg.target_nodes = 300;
  EXPECT_EQ(adsimulator_graph(cfg).edges(), adsimulator_graph(cfg).edges());
}

TEST(AdSimulator, FasterThanDbCreatorAtScale) {
  // The index-backed port scales near-linearly; the DBCreator port label-
  // scans per edge.  At 3000 nodes the gap is already pronounced.
  DbCreatorConfig db;
  db.target_nodes = 3000;
  AdSimulatorConfig sim;
  sim.target_nodes = 3000;
  util::Stopwatch t1;
  run_dbcreator(db);
  const double db_time = t1.seconds();
  util::Stopwatch t2;
  run_adsimulator(sim);
  const double sim_time = t2.seconds();
  EXPECT_LT(sim_time, db_time);
}

TEST(University, MatchesReportedStatistics) {
  UniversityConfig cfg;
  cfg.target_nodes = 20000;  // scaled-down for test speed
  const AttackGraph g = university_graph(cfg);
  EXPECT_NEAR(static_cast<double>(g.node_count()), 20000.0, 300.0);
  ASSERT_NE(g.domain_admins(), adcore::kNoNodeIndex);

  // Fig. 9: ≈0.02% of regular users reach Domain Admins.
  const auto reach = analytics::users_reaching_da(g);
  EXPECT_GT(reach.fraction, 0.0);
  EXPECT_LT(reach.fraction, 0.001);

  // Fig. 10c: a choke point carrying more than 80% of the paths.
  const auto rp = analytics::route_penetration(g);
  EXPECT_GT(rp.peak(), 0.8);

  // Fig. 8: long-tailed sessions, peak ≈ 20.
  const auto sessions = analytics::session_stats(g);
  EXPECT_LE(sessions.peak, 21u);
  EXPECT_GE(sessions.peak, 5u);
  EXPECT_LT(sessions.mean, 3.0);
}

TEST(University, DensityNearReported) {
  UniversityConfig cfg;
  cfg.target_nodes = 50000;
  const AttackGraph g = university_graph(cfg);
  // Paper: ≈1e-4 at 100k (8e-5 density, 1.2M edges quoted); at half size
  // the density roughly doubles for the same mean degree.
  const double mean_degree =
      static_cast<double>(g.edge_count()) / static_cast<double>(g.node_count());
  EXPECT_GT(mean_degree, 4.0);
  EXPECT_LT(mean_degree, 16.0);
}

TEST(University, DeterministicForSeed) {
  UniversityConfig cfg;
  cfg.target_nodes = 5000;
  EXPECT_EQ(university_graph(cfg).edges(), university_graph(cfg).edges());
}

}  // namespace
}  // namespace adsynth::baselines
