#include "metagraph/metagraph.hpp"

#include <gtest/gtest.h>

namespace adsynth::metagraph {
namespace {

TEST(Metagraph, ElementsAndSets) {
  Metagraph mg;
  const ElementId x1 = mg.add_element("x1");
  const ElementId x2 = mg.add_element("x2");
  const SetId s = mg.add_set("S", {x2, x1, x1});  // dedup + sort
  EXPECT_EQ(mg.element_count(), 2u);
  EXPECT_EQ(mg.set_count(), 1u);
  EXPECT_EQ(mg.members(s), (std::vector<ElementId>{x1, x2}));
  EXPECT_EQ(mg.element_name(x1), "x1");
  EXPECT_EQ(mg.set_name(s), "S");
  EXPECT_TRUE(mg.contains(s, x1));
  EXPECT_EQ(mg.membership_size(), 2u);
}

TEST(Metagraph, AddToSetIsIdempotent) {
  Metagraph mg;
  const ElementId x = mg.add_element("x");
  const SetId s = mg.add_set("S");
  mg.add_to_set(s, x);
  mg.add_to_set(s, x);
  EXPECT_EQ(mg.members(s).size(), 1u);
  EXPECT_EQ(mg.membership_size(), 1u);
  EXPECT_EQ(mg.sets_of(x), (std::vector<SetId>{s}));
}

TEST(Metagraph, EdgesTrackIncidence) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const SetId v = mg.add_set("V", {a});
  const SetId w = mg.add_set("W", {b});
  const EdgeId e = mg.add_edge(v, w, {"GenericAll", {{"inherited", "true"}}});
  EXPECT_EQ(mg.edge_count(), 1u);
  EXPECT_EQ(mg.edge(e).invertex, v);
  EXPECT_EQ(mg.edge(e).outvertex, w);
  EXPECT_EQ(mg.edge(e).attributes.label, "GenericAll");
  EXPECT_EQ(mg.edge(e).attributes.properties.at("inherited"), "true");
  EXPECT_EQ(mg.edges_from(v), (std::vector<EdgeId>{e}));
  EXPECT_EQ(mg.edges_into(w), (std::vector<EdgeId>{e}));
  EXPECT_TRUE(mg.edges_from(w).empty());
}

TEST(Metagraph, FindSetByName) {
  Metagraph mg;
  const SetId s = mg.add_set("Admins");
  EXPECT_EQ(mg.find_set("Admins"), std::optional<SetId>(s));
  EXPECT_EQ(mg.find_set("Nope"), std::nullopt);
}

TEST(Metagraph, InvalidIdsThrow) {
  Metagraph mg;
  EXPECT_THROW(mg.element_name(0), std::out_of_range);
  EXPECT_THROW(mg.set_name(0), std::out_of_range);
  EXPECT_THROW(mg.edge(0), std::out_of_range);
  EXPECT_THROW(mg.add_set("S", {7}), std::out_of_range);
  const SetId s = mg.add_set("S");
  EXPECT_THROW(mg.add_to_set(s, 9), std::out_of_range);
  EXPECT_THROW(mg.add_edge(s, 5, {}), std::out_of_range);
}

TEST(Metagraph, SetsGrowAfterEdgeCreation) {
  // Fig. 2 semantics: edges reference sets, so membership added later is
  // visible through existing edges.
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const SetId v = mg.add_set("V");
  const SetId w = mg.add_set("W");
  const EdgeId e = mg.add_edge(v, w, {"p", {}});
  mg.add_to_set(v, a);
  EXPECT_TRUE(mg.contains(mg.edge(e).invertex, a));
}

}  // namespace
}  // namespace adsynth::metagraph
