#include "metagraph/algorithms.hpp"

#include <gtest/gtest.h>

namespace adsynth::metagraph {
namespace {

/// Builds the Fig. 2-style fixture:
///   e1: {x1,x2} -> {x4}
///   e2: {x4}    -> {x5,x6}
///   e3: {x3,x5} -> {x7}
struct Fixture {
  Metagraph mg;
  std::vector<ElementId> x;  // x[1]..x[7], x[0] unused

  Fixture() {
    x.push_back(kNoElement);
    for (int i = 1; i <= 7; ++i) {
      std::string name = "x";
      name += std::to_string(i);
      x.push_back(mg.add_element(name));
    }
    const SetId v1 = mg.add_set("V1", {x[1], x[2]});
    const SetId w1 = mg.add_set("W1", {x[4]});
    const SetId w2 = mg.add_set("W2", {x[5], x[6]});
    const SetId v3 = mg.add_set("V3", {x[3], x[5]});
    const SetId w3 = mg.add_set("W3", {x[7]});
    mg.add_edge(v1, w1, {"e1", {}});
    mg.add_edge(w1, w2, {"e2", {}});
    mg.add_edge(v3, w3, {"e3", {}});
  }
};

TEST(Reach, DisjunctiveFiresOnAnyInvertexMember) {
  Fixture f;
  // From x1 alone: e1 fires (disjunctive), then e2, then e3 via x5.
  const ReachResult r = reach(f.mg, {f.x[1]}, ReachMode::kDisjunctive);
  EXPECT_TRUE(r.element_reached[f.x[4]]);
  EXPECT_TRUE(r.element_reached[f.x[5]]);
  EXPECT_TRUE(r.element_reached[f.x[6]]);
  EXPECT_TRUE(r.element_reached[f.x[7]]);
  EXPECT_FALSE(r.element_reached[f.x[2]]);
  EXPECT_FALSE(r.element_reached[f.x[3]]);
  EXPECT_EQ(r.reached_count(), 5u);  // x1, x4, x5, x6, x7
}

TEST(Reach, ConjunctiveRequiresWholeInvertex) {
  Fixture f;
  // From x1 alone: e1 must NOT fire (x2 missing).
  const ReachResult partial = reach(f.mg, {f.x[1]}, ReachMode::kConjunctive);
  EXPECT_FALSE(partial.element_reached[f.x[4]]);
  EXPECT_EQ(partial.reached_count(), 1u);
  // From {x1, x2}: e1 and e2 fire; e3 still blocked (x3 missing).
  const ReachResult both =
      reach(f.mg, {f.x[1], f.x[2]}, ReachMode::kConjunctive);
  EXPECT_TRUE(both.element_reached[f.x[4]]);
  EXPECT_TRUE(both.element_reached[f.x[5]]);
  EXPECT_FALSE(both.element_reached[f.x[7]]);
  // Adding x3 completes the metapath to x7.
  const ReachResult full =
      reach(f.mg, {f.x[1], f.x[2], f.x[3]}, ReachMode::kConjunctive);
  EXPECT_TRUE(full.element_reached[f.x[7]]);
}

TEST(Reach, HasMetapathConvenience) {
  Fixture f;
  const SetId v1 = *f.mg.find_set("V1");
  EXPECT_TRUE(has_metapath(f.mg, v1, f.x[6], ReachMode::kConjunctive));
  EXPECT_FALSE(has_metapath(f.mg, v1, f.x[7], ReachMode::kConjunctive));
  EXPECT_TRUE(has_metapath(f.mg, v1, f.x[7], ReachMode::kDisjunctive));
}

TEST(Reach, WitnessEdgesReconstructChain) {
  Fixture f;
  const ReachResult r = reach(f.mg, {f.x[1]}, ReachMode::kDisjunctive);
  const auto chain = witness_edges(f.mg, r, f.x[7]);
  ASSERT_TRUE(chain.has_value());
  ASSERT_FALSE(chain->empty());
  // The last edge of the chain must produce x7.
  const MetaEdge& last = f.mg.edge(chain->back());
  EXPECT_TRUE(f.mg.contains(last.outvertex, f.x[7]));
  // Sources have empty chains; unreached elements yield nullopt.
  EXPECT_TRUE(witness_edges(f.mg, r, f.x[1])->empty());
  EXPECT_FALSE(witness_edges(f.mg, r, f.x[3]).has_value());
}

TEST(Reach, EmptySourcesReachNothing) {
  Fixture f;
  const ReachResult r = reach(f.mg, {}, ReachMode::kDisjunctive);
  EXPECT_EQ(r.reached_count(), 0u);
}

TEST(Reach, InvalidSourceThrows) {
  Fixture f;
  EXPECT_THROW(reach(f.mg, {999}, ReachMode::kDisjunctive),
               std::out_of_range);
}

TEST(Reach, CyclicMetagraphTerminates) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const SetId sa = mg.add_set("A", {a});
  const SetId sb = mg.add_set("B", {b});
  mg.add_edge(sa, sb, {"f", {}});
  mg.add_edge(sb, sa, {"g", {}});
  const ReachResult r = reach(mg, {a}, ReachMode::kDisjunctive);
  EXPECT_EQ(r.reached_count(), 2u);
  EXPECT_TRUE(r.edge_fired[0]);
  EXPECT_TRUE(r.edge_fired[1]);
}

TEST(Stats, CountsAndExpansionBound) {
  Fixture f;
  const MetagraphStats s = compute_stats(f.mg);
  EXPECT_EQ(s.elements, 7u);
  EXPECT_EQ(s.sets, 5u);
  EXPECT_EQ(s.edges, 3u);
  EXPECT_EQ(s.membership, 8u);
  // e1: 2·1, e2: 1·2, e3: 2·1 → 6 element pairs.
  EXPECT_EQ(s.expanded_edge_count, 6u);
  EXPECT_DOUBLE_EQ(s.mean_invertex_size, (2 + 1 + 2) / 3.0);
  EXPECT_DOUBLE_EQ(s.mean_outvertex_size, (1 + 2 + 1) / 3.0);
}

TEST(Stats, EmptyMetagraph) {
  const MetagraphStats s = compute_stats(Metagraph{});
  EXPECT_EQ(s.elements, 0u);
  EXPECT_EQ(s.edges, 0u);
  EXPECT_DOUBLE_EQ(s.mean_invertex_size, 0.0);
}

}  // namespace
}  // namespace adsynth::metagraph
