#include "metagraph/analysis.hpp"

#include <gtest/gtest.h>

namespace adsynth::metagraph {
namespace {

/// Chain with a parallel branch:
///   e0: {a} -> {b}
///   e1: {b} -> {t}
///   e2: {a} -> {c}
///   e3: {c} -> {t}
/// Two edge-disjoint routes a→t: no bridges; cutset needs 2 edges.
struct Diamond {
  Metagraph mg;
  ElementId a, b, c, t;
  SetId sa, sb, sc, st;

  Diamond() {
    a = mg.add_element("a");
    b = mg.add_element("b");
    c = mg.add_element("c");
    t = mg.add_element("t");
    sa = mg.add_set("A", {a});
    sb = mg.add_set("B", {b});
    sc = mg.add_set("C", {c});
    st = mg.add_set("T", {t});
    mg.add_edge(sa, sb, {"e0", {}});
    mg.add_edge(sb, st, {"e1", {}});
    mg.add_edge(sa, sc, {"e2", {}});
    mg.add_edge(sc, st, {"e3", {}});
  }
};

TEST(ReachMask, BlockedEdgesExcluded) {
  Diamond d;
  std::vector<bool> blocked(d.mg.edge_count(), false);
  blocked[0] = true;
  blocked[2] = true;
  const ReachResult r =
      reach(d.mg, {d.a}, ReachMode::kDisjunctive, &blocked);
  EXPECT_FALSE(r.element_reached[d.t]);
  EXPECT_FALSE(r.element_reached[d.b]);
  std::vector<bool> wrong(2, false);
  EXPECT_THROW(reach(d.mg, {d.a}, ReachMode::kDisjunctive, &wrong),
               std::invalid_argument);
}

TEST(ReachableEdges, FiredEdgesOnly) {
  Diamond d;
  const auto edges =
      reachable_edges(d.mg, {d.b}, ReachMode::kDisjunctive);
  // From b only e1 fires.
  EXPECT_EQ(edges, (std::vector<EdgeId>{1}));
  EXPECT_EQ(reachable_edges(d.mg, {d.a}, ReachMode::kDisjunctive).size(), 4u);
}

TEST(Bridges, DiamondHasNone) {
  Diamond d;
  EXPECT_TRUE(bridge_edges(d.mg, {d.a}, d.t, ReachMode::kDisjunctive).empty());
  EXPECT_FALSE(is_bridge(d.mg, {d.a}, d.t, 1, ReachMode::kDisjunctive));
}

TEST(Bridges, ChainIsAllBridges) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const ElementId t = mg.add_element("t");
  const SetId sa = mg.add_set("A", {a});
  const SetId sb = mg.add_set("B", {b});
  const SetId st = mg.add_set("T", {t});
  mg.add_edge(sa, sb, {"e0", {}});
  mg.add_edge(sb, st, {"e1", {}});
  const auto bridges = bridge_edges(mg, {a}, t, ReachMode::kDisjunctive);
  EXPECT_EQ(bridges, (std::vector<EdgeId>{0, 1}));
  EXPECT_TRUE(is_bridge(mg, {a}, t, 0, ReachMode::kDisjunctive));
}

TEST(Bridges, UnreachableTargetHasNoBridges) {
  Diamond d;
  EXPECT_TRUE(bridge_edges(d.mg, {d.t}, d.a, ReachMode::kDisjunctive).empty());
  EXPECT_FALSE(is_bridge(d.mg, {d.t}, d.a, 0, ReachMode::kDisjunctive));
}

TEST(Cutset, DiamondNeedsTwoEdges) {
  Diamond d;
  const auto cut = greedy_cutset(d.mg, {d.a}, d.t, ReachMode::kDisjunctive);
  EXPECT_EQ(cut.size(), 2u);
  // Verify the cut actually disconnects.
  std::vector<bool> blocked(d.mg.edge_count(), false);
  for (const EdgeId e : cut) blocked[e] = true;
  const ReachResult r =
      reach(d.mg, {d.a}, ReachMode::kDisjunctive, &blocked);
  EXPECT_FALSE(r.element_reached[d.t]);
}

TEST(Cutset, AlreadyUnreachableIsEmpty) {
  Diamond d;
  EXPECT_TRUE(
      greedy_cutset(d.mg, {d.t}, d.a, ReachMode::kDisjunctive).empty());
}

TEST(Cutset, SourceTargetThrows) {
  Diamond d;
  EXPECT_THROW(greedy_cutset(d.mg, {d.t}, d.t, ReachMode::kDisjunctive),
               std::logic_error);
}

TEST(Project, KeepsIntersectedStructure) {
  Diamond d;
  // Keep a, b, t: the c-branch disappears.
  const Projection p = project(d.mg, {d.a, d.b, d.t});
  EXPECT_EQ(p.graph.element_count(), 3u);
  EXPECT_EQ(p.graph.set_count(), 3u);  // C's intersection is empty
  EXPECT_EQ(p.graph.edge_count(), 2u);
  EXPECT_EQ(p.original_edge, (std::vector<EdgeId>{0, 1}));
  // Reachability is preserved within the projection.
  const ElementId pa = 0;  // 'a' is the smallest kept id
  const ReachResult r = reach(p.graph, {pa}, ReachMode::kDisjunctive);
  EXPECT_EQ(r.reached_count(), 3u);
}

TEST(Project, MixedSetsShrink) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const SetId both = mg.add_set("AB", {a, b});
  const SetId only_b = mg.add_set("B", {b});
  mg.add_edge(both, only_b, {"p", {}});
  const Projection p = project(mg, {a});
  EXPECT_EQ(p.graph.element_count(), 1u);
  EXPECT_EQ(p.graph.set_count(), 1u);  // AB ∩ {a} = {a}; B drops
  EXPECT_EQ(p.graph.members(0).size(), 1u);
  EXPECT_EQ(p.graph.edge_count(), 0u);  // outvertex vanished
  EXPECT_EQ(p.original_set, (std::vector<SetId>{both}));
}

TEST(Project, DuplicatesAndValidation) {
  Diamond d;
  const Projection p = project(d.mg, {d.a, d.a, d.a});
  EXPECT_EQ(p.graph.element_count(), 1u);
  EXPECT_THROW(project(d.mg, {999}), std::out_of_range);
}

TEST(Cutset, ConjunctiveModeRespectsSemantics) {
  // Conjunctive: e needs BOTH members; cutting the feeder of one member
  // already blocks the edge.
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const ElementId c = mg.add_element("c");
  const ElementId t = mg.add_element("t");
  const SetId sa = mg.add_set("A", {a});
  const SetId sb = mg.add_set("B", {b});
  const SetId sbc = mg.add_set("BC", {b, c});
  const SetId st = mg.add_set("T", {t});
  mg.add_edge(sa, sb, {"feed_b", {}});   // provides b
  (void)sbc;
  mg.add_edge(mg.add_set("C0", {c}), st, {"noise", {}});  // unrelated
  mg.add_edge(sbc, st, {"need_bc", {}});
  // From {a, c}: conjunctive reach gets b via feed_b, then bc complete → t.
  const auto cut =
      greedy_cutset(mg, {a, c}, t, ReachMode::kConjunctive);
  EXPECT_FALSE(cut.empty());
  std::vector<bool> blocked(mg.edge_count(), false);
  for (const EdgeId e : cut) blocked[e] = true;
  EXPECT_FALSE(reach(mg, {a, c}, ReachMode::kConjunctive, &blocked)
                   .element_reached[t]);
}

}  // namespace
}  // namespace adsynth::metagraph
