#include "metagraph/expansion.hpp"

#include <gtest/gtest.h>

#include <set>

namespace adsynth::metagraph {
namespace {

TEST(Expand, ProducesAllMemberPairs) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const ElementId c = mg.add_element("c");
  const SetId v = mg.add_set("V", {a, b});
  const SetId w = mg.add_set("W", {c});
  mg.add_edge(v, w, {"GenericAll", {}});
  const ExpandedGraph g = expand(mg);
  EXPECT_EQ(g.element_count, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  ASSERT_EQ(g.labels.size(), 1u);
  EXPECT_EQ(g.labels[0], "GenericAll");
  std::set<std::pair<ElementId, ElementId>> pairs;
  for (const auto& e : g.edges) {
    pairs.emplace(e.source, e.target);
    EXPECT_EQ(e.label, 0u);
    EXPECT_EQ(e.origin, 0u);
  }
  EXPECT_TRUE(pairs.count({a, c}));
  EXPECT_TRUE(pairs.count({b, c}));
}

TEST(Expand, InternsLabelsAcrossEdges) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const SetId s = mg.add_set("S", {a});
  mg.add_edge(s, s, {"X", {}});
  mg.add_edge(s, s, {"Y", {}});
  mg.add_edge(s, s, {"X", {}});
  const ExpandedGraph g = expand(mg);
  EXPECT_EQ(g.labels.size(), 2u);
  EXPECT_EQ(g.edges.size(), 3u);
}

TEST(Expand, EmptySetsSkippedByDefault) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const SetId v = mg.add_set("V", {a});
  const SetId empty = mg.add_set("E");
  mg.add_edge(v, empty, {"p", {}});
  EXPECT_TRUE(expand(mg).edges.empty());
  ExpandOptions strict;
  strict.allow_empty_sets = false;
  EXPECT_THROW(expand(mg, strict), std::invalid_argument);
}

TEST(Expand, CapGuardsExplosion) {
  Metagraph mg;
  std::vector<ElementId> members;
  for (int i = 0; i < 100; ++i) members.push_back(mg.add_element("x"));
  const SetId v = mg.add_set("V", members);
  mg.add_edge(v, v, {"p", {}});  // 100×100 = 10000 pairs
  ExpandOptions tight;
  tight.max_edges = 9999;
  EXPECT_THROW(expand(mg, tight), std::length_error);
  tight.max_edges = 10000;
  EXPECT_EQ(expand(mg, tight).edges.size(), 10000u);
}

TEST(Expand, DeduplicateCollapsesParallelPairs) {
  Metagraph mg;
  const ElementId a = mg.add_element("a");
  const ElementId b = mg.add_element("b");
  const SetId v = mg.add_set("V", {a});
  const SetId w = mg.add_set("W", {b});
  mg.add_edge(v, w, {"p", {}});
  mg.add_edge(v, w, {"p", {}});  // same denotation through another edge
  mg.add_edge(v, w, {"q", {}});  // different label survives
  ExpandedGraph g = expand(mg);
  EXPECT_EQ(g.edges.size(), 3u);
  g.deduplicate();
  EXPECT_EQ(g.edges.size(), 2u);
}

}  // namespace
}  // namespace adsynth::metagraph
