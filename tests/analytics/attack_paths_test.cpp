#include "analytics/attack_paths.hpp"

#include <gtest/gtest.h>

#include "adcore/convert.hpp"
#include "analytics/reachability.hpp"
#include "core/generator.hpp"
#include "util/ids.hpp"

namespace adsynth::analytics {
namespace {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

struct Funnel {
  AttackGraph g;
  NodeIndex u0, u1, c, a, da;

  Funnel() {
    da = g.add_named_node(ObjectKind::kGroup, "DA", 0);
    g.set_domain_admins(da);
    u0 = g.add_named_node(ObjectKind::kUser, "U0", 2, node_flag::kEnabled);
    u1 = g.add_named_node(ObjectKind::kUser, "U1", 2, node_flag::kEnabled);
    c = g.add_named_node(ObjectKind::kComputer, "C", 0);
    a = g.add_named_node(ObjectKind::kUser, "A", 0,
                         node_flag::kAdmin | node_flag::kEnabled);
    g.add_edge(u0, c, EdgeKind::kExecuteDCOM, true);
    g.add_edge(u1, c, EdgeKind::kExecuteDCOM, true);
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
  }
};

TEST(AttackPaths, ExtractsHopsWithKinds) {
  Funnel f;
  const auto paths = shortest_attack_paths(f.g);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.length(), 3u);
    EXPECT_EQ(p.hops[0].kind, EdgeKind::kExecuteDCOM);
    EXPECT_EQ(p.hops[1].kind, EdgeKind::kHasSession);
    EXPECT_EQ(p.hops[2].kind, EdgeKind::kMemberOf);
    EXPECT_EQ(p.hops[0].from, p.source);
    EXPECT_EQ(p.hops[2].to, f.da);
    // Hops chain.
    EXPECT_EQ(p.hops[0].to, p.hops[1].from);
    EXPECT_EQ(p.hops[1].to, p.hops[2].from);
  }
  EXPECT_EQ(paths[0].describe(f.g),
            "U0 -[ExecuteDCOM]-> C -[HasSession]-> A -[MemberOf]-> DA");
}

TEST(AttackPaths, MaxPathsAndOrdering) {
  Funnel f;
  // Add a closer source (2 hops): direct session harvest.
  const NodeIndex close = f.g.add_named_node(ObjectKind::kUser, "CLOSE", 2,
                                             node_flag::kEnabled);
  f.g.add_edge(close, f.a, EdgeKind::kForceChangePassword);
  AttackPathOptions options;
  options.max_paths = 1;
  const auto paths = shortest_attack_paths(f.g, options);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].source, close);  // shortest-first
  EXPECT_EQ(paths[0].length(), 2u);
}

TEST(AttackPaths, BlockedMaskReroutesOrRemoves) {
  Funnel f;
  std::vector<bool> blocked(f.g.edge_count(), false);
  blocked[2] = true;  // c -> a
  AttackPathOptions options;
  options.blocked = &blocked;
  EXPECT_TRUE(shortest_attack_paths(f.g, options).empty());
}

TEST(AttackPaths, NoDomainAdminsThrows) {
  AttackGraph g;
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  EXPECT_THROW(shortest_attack_paths(g), std::logic_error);
}

TEST(AttackPaths, GeneratedGraphPathsAreValid) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(8000, 3));
  AttackPathOptions options;
  options.max_paths = 20;
  const auto paths = shortest_attack_paths(ad.graph, options);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    ASSERT_FALSE(p.hops.empty());
    EXPECT_EQ(p.hops.back().to, ad.graph.domain_admins());
    for (const auto& hop : p.hops) {
      EXPECT_TRUE(adcore::is_traversable(hop.kind));
      const auto& e = ad.graph.edges()[hop.edge];
      EXPECT_EQ(e.source, hop.from);
      EXPECT_EQ(e.target, hop.to);
      EXPECT_EQ(e.kind, hop.kind);
    }
    // Lengths are non-decreasing across the returned list.
  }
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].length(), paths[i - 1].length());
  }
}

TEST(ExportIds, ObjectIdsAndSidsAreWellFormed) {
  Funnel f;
  const auto store = adcore::to_store(f.g, "corp.local", 99);
  std::string domain_part;
  for (graphdb::NodeId n = 0; n < store.node_capacity(); ++n) {
    const auto* oid = store.node_property(n, "objectid");
    ASSERT_NE(oid, nullptr);
    EXPECT_NO_THROW(util::Guid::parse(oid->as_string()));
    const auto* sid = store.node_property(n, "objectsid");
    ASSERT_NE(sid, nullptr);  // every funnel node is a principal
    const auto parsed = util::Sid::parse(sid->as_string());
    if (domain_part.empty()) {
      domain_part = parsed.domain_part();
    } else {
      EXPECT_EQ(parsed.domain_part(), domain_part);
    }
  }
}

TEST(ExportIds, DeterministicForSeed) {
  Funnel f;
  const auto s1 = adcore::to_store(f.g, "corp.local", 7);
  const auto s2 = adcore::to_store(f.g, "corp.local", 7);
  const auto s3 = adcore::to_store(f.g, "corp.local", 8);
  EXPECT_EQ(s1.node_property(0, "objectid")->as_string(),
            s2.node_property(0, "objectid")->as_string());
  EXPECT_NE(s1.node_property(0, "objectid")->as_string(),
            s3.node_property(0, "objectid")->as_string());
}

}  // namespace
}  // namespace adsynth::analytics
