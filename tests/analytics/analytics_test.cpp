// Tests for the analytics stack on hand-built graphs with known answers.
#include <gtest/gtest.h>

#include "analytics/graph_view.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "analytics/sessions.hpp"

namespace adsynth::analytics {
namespace {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

/// Two regular users funnelling to DA through one computer:
///   u0 -ExecuteDCOM-> c -HasSession-> a -MemberOf-> DA
///   u1 -ExecuteDCOM-> c        (same route)
/// plus a disconnected user u2 and a non-traversable GetChanges edge.
struct Funnel {
  AttackGraph g;
  NodeIndex u0, u1, u2, c, a, da;

  Funnel() {
    da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0);
    g.set_domain_admins(da);
    u0 = g.add_named_node(ObjectKind::kUser, "U0", 2, node_flag::kEnabled);
    u1 = g.add_named_node(ObjectKind::kUser, "U1", 2, node_flag::kEnabled);
    u2 = g.add_named_node(ObjectKind::kUser, "U2", 2, node_flag::kEnabled);
    c = g.add_named_node(ObjectKind::kComputer, "C", 0);
    a = g.add_named_node(ObjectKind::kUser, "A", 0,
                         node_flag::kAdmin | node_flag::kEnabled);
    g.add_edge(u0, c, EdgeKind::kExecuteDCOM, true);
    g.add_edge(u1, c, EdgeKind::kExecuteDCOM, true);
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
    // Noise that must not count as an attack edge.
    g.add_edge(u2, da, EdgeKind::kGetChanges);
  }
};

TEST(GraphView, CsrMatchesEdgeList) {
  Funnel f;
  const Csr fwd = build_forward(f.g);
  // GetChanges excluded (non-traversable): 4 arcs remain.
  EXPECT_EQ(fwd.arc_count(), 4u);
  EXPECT_EQ(fwd.node_count(), f.g.node_count());
  // u0's single neighbour is c via edge 0.
  ASSERT_EQ(fwd.offsets[f.u0 + 1] - fwd.offsets[f.u0], 1u);
  EXPECT_EQ(fwd.targets[fwd.offsets[f.u0]], f.c);
  EXPECT_EQ(fwd.edge_ids[fwd.offsets[f.u0]], 0u);
  const Csr rev = build_reverse(f.g);
  EXPECT_EQ(rev.arc_count(), 4u);
  // In the reverse view, c's neighbours are u0 and u1.
  EXPECT_EQ(rev.offsets[f.c + 1] - rev.offsets[f.c], 2u);
}

TEST(GraphView, BlockedMaskExcludesEdges) {
  Funnel f;
  std::vector<bool> blocked(f.g.edge_count(), false);
  blocked[2] = true;  // c -> a
  ViewOptions options;
  options.blocked = &blocked;
  EXPECT_EQ(build_forward(f.g, options).arc_count(), 3u);
}

TEST(GraphView, MaskSizeValidated) {
  Funnel f;
  std::vector<bool> wrong(3, false);
  ViewOptions options;
  options.blocked = &wrong;
  EXPECT_THROW(build_forward(f.g, options), std::invalid_argument);
}

TEST(GraphView, NonTraversableIncludedWhenRequested) {
  Funnel f;
  ViewOptions options;
  options.traversable_only = false;
  EXPECT_EQ(build_forward(f.g, options).arc_count(), 5u);
}

TEST(Reachability, BfsDistances) {
  Funnel f;
  const Csr fwd = build_forward(f.g);
  const auto dist = bfs_distances(fwd, {f.u0});
  EXPECT_EQ(dist[f.u0], 0);
  EXPECT_EQ(dist[f.c], 1);
  EXPECT_EQ(dist[f.a], 2);
  EXPECT_EQ(dist[f.da], 3);
  EXPECT_EQ(dist[f.u1], kUnreachable);
  EXPECT_EQ(dist[f.u2], kUnreachable);
}

TEST(Reachability, MultiSourceBfs) {
  Funnel f;
  const Csr fwd = build_forward(f.g);
  const auto dist = bfs_distances(fwd, {f.u0, f.a});
  EXPECT_EQ(dist[f.da], 1);  // via a
  EXPECT_THROW(bfs_distances(fwd, {999}), std::out_of_range);
}

TEST(Reachability, ShortestPathReconstruction) {
  Funnel f;
  const Csr fwd = build_forward(f.g);
  const auto path = shortest_path(fwd, f.u0, f.da);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeIndex>{f.u0, f.c, f.a, f.da}));
  EXPECT_FALSE(shortest_path(fwd, f.u2, f.da).has_value());
  const auto self = shortest_path(fwd, f.da, f.da);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->size(), 1u);
}

TEST(Reachability, RegularUsersExcludeAdminsAndDisabled) {
  Funnel f;
  const auto users = regular_users(f.g);
  EXPECT_EQ(users, (std::vector<NodeIndex>{f.u0, f.u1, f.u2}));
}

TEST(Reachability, UsersReachingDa) {
  Funnel f;
  const auto result = users_reaching_da(f.g);
  EXPECT_EQ(result.regular_users, 3u);
  EXPECT_EQ(result.users_with_path, 2u);
  EXPECT_DOUBLE_EQ(result.fraction, 2.0 / 3.0);
  EXPECT_EQ(result.distances[0], 3);
  EXPECT_EQ(result.distances[2], kUnreachable);
}

TEST(Reachability, BlockedEdgeCutsPaths) {
  Funnel f;
  std::vector<bool> blocked(f.g.edge_count(), false);
  blocked[2] = true;  // the funnel edge c -> a
  const auto result = users_reaching_da(f.g, &blocked);
  EXPECT_EQ(result.users_with_path, 0u);
}

TEST(Reachability, MissingDaThrows) {
  AttackGraph g;
  g.add_node(ObjectKind::kUser, 0, node_flag::kEnabled);
  EXPECT_THROW(users_reaching_da(g), std::logic_error);
}

TEST(RpRate, FunnelNodesCarryAllPaths) {
  Funnel f;
  const RpResult rp = route_penetration(f.g);
  EXPECT_EQ(rp.contributing_sources, 2u);
  EXPECT_FALSE(rp.sampled);
  // Both shortest paths run through c and a: RP = 100%.
  EXPECT_DOUBLE_EQ(rp.rate[f.c], 1.0);
  EXPECT_DOUBLE_EQ(rp.rate[f.a], 1.0);
  // Each source sits on half the paths.
  EXPECT_DOUBLE_EQ(rp.rate[f.u0], 0.5);
  EXPECT_DOUBLE_EQ(rp.rate[f.u1], 0.5);
  // The target itself is excluded by definition.
  EXPECT_DOUBLE_EQ(rp.rate[f.da], 0.0);
  EXPECT_DOUBLE_EQ(rp.peak(), 1.0);
  const auto top = rp.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].second, 1.0);
}

TEST(RpRate, ParallelRoutesSplitTraffic) {
  // u -> c1 -> a -> DA and u -> c2 -> a -> DA: two equal shortest paths.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  const NodeIndex u =
      g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const NodeIndex c1 = g.add_node(ObjectKind::kComputer);
  const NodeIndex c2 = g.add_node(ObjectKind::kComputer);
  const NodeIndex a =
      g.add_node(ObjectKind::kUser, 0, node_flag::kAdmin | node_flag::kEnabled);
  g.add_edge(u, c1, EdgeKind::kExecuteDCOM);
  g.add_edge(u, c2, EdgeKind::kExecuteDCOM);
  g.add_edge(c1, a, EdgeKind::kHasSession);
  g.add_edge(c2, a, EdgeKind::kHasSession);
  g.add_edge(a, da, EdgeKind::kMemberOf);
  const RpResult rp = route_penetration(g);
  EXPECT_DOUBLE_EQ(rp.rate[c1], 0.5);
  EXPECT_DOUBLE_EQ(rp.rate[c2], 0.5);
  EXPECT_DOUBLE_EQ(rp.rate[a], 1.0);
}

TEST(RpRate, LongerRoutesIgnored) {
  // A detour longer than the shortest path contributes nothing.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const NodeIndex mid = g.add_node(ObjectKind::kComputer);
  const NodeIndex detour = g.add_node(ObjectKind::kComputer);
  const NodeIndex a =
      g.add_node(ObjectKind::kUser, 0, node_flag::kAdmin | node_flag::kEnabled);
  g.add_edge(u, mid, EdgeKind::kExecuteDCOM);
  g.add_edge(mid, a, EdgeKind::kHasSession);
  g.add_edge(a, da, EdgeKind::kMemberOf);
  g.add_edge(u, detour, EdgeKind::kExecuteDCOM);
  g.add_edge(detour, mid, EdgeKind::kAdminTo);  // makes a length-4 route
  const RpResult rp = route_penetration(g);
  EXPECT_DOUBLE_EQ(rp.rate[detour], 0.0);
  EXPECT_DOUBLE_EQ(rp.rate[mid], 1.0);
}

TEST(RpRate, EdgeTrafficMatchesNodeTraffic) {
  Funnel f;
  RpOptions options;
  options.edge_traffic = true;
  const RpResult rp = route_penetration(f.g, options);
  ASSERT_EQ(rp.edge_traffic.size(), f.g.edge_count());
  // Edge c->a (index 2) carries all paths; a->DA (index 3) too.
  EXPECT_DOUBLE_EQ(rp.edge_traffic[2], 1.0);
  EXPECT_DOUBLE_EQ(rp.edge_traffic[3], 1.0);
  EXPECT_DOUBLE_EQ(rp.edge_traffic[0], 0.5);
  EXPECT_DOUBLE_EQ(rp.edge_traffic[4], 0.0);  // non-traversable noise
}

TEST(RpRate, NoPathsMeansEmptyResult) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const RpResult rp = route_penetration(g);
  EXPECT_EQ(rp.contributing_sources, 0u);
  EXPECT_DOUBLE_EQ(rp.peak(), 0.0);
  EXPECT_TRUE(rp.top(5).empty());
}

TEST(RpRate, SamplingKicksInAboveCap) {
  // Many sources, one funnel: sampling must preserve RP ≈ 1 at the funnel.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  const NodeIndex c = g.add_node(ObjectKind::kComputer);
  const NodeIndex a =
      g.add_node(ObjectKind::kUser, 0, node_flag::kAdmin | node_flag::kEnabled);
  g.add_edge(c, a, EdgeKind::kHasSession);
  g.add_edge(a, da, EdgeKind::kMemberOf);
  for (int i = 0; i < 100; ++i) {
    const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
    g.add_edge(u, c, EdgeKind::kExecuteDCOM);
  }
  RpOptions options;
  options.max_sources = 10;
  const RpResult rp = route_penetration(g, options);
  EXPECT_TRUE(rp.sampled);
  EXPECT_EQ(rp.contributing_sources, 100u);
  EXPECT_EQ(rp.evaluated_sources, 10u);
  EXPECT_DOUBLE_EQ(rp.rate[c], 1.0);
}

TEST(Sessions, CountsPeaksAndTopK) {
  Funnel f;
  // Add a second session for admin a.
  f.g.add_edge(f.c, f.a, EdgeKind::kHasSession);
  const SessionStats stats = session_stats(f.g);
  EXPECT_EQ(stats.total_sessions, 2u);
  EXPECT_EQ(stats.peak, 2u);
  // Top-2: [2, 0].
  const auto top = stats.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0 / 4.0);  // 4 users
}

TEST(Metrics, AggregatesMatchFixture) {
  Funnel f;
  const GraphMetrics m = compute_metrics(f.g);
  EXPECT_EQ(m.nodes, 6u);
  EXPECT_EQ(m.edges, 5u);
  EXPECT_EQ(m.count(ObjectKind::kUser), 4u);
  EXPECT_EQ(m.count(ObjectKind::kComputer), 1u);
  EXPECT_EQ(m.count(EdgeKind::kExecuteDCOM), 2u);
  EXPECT_EQ(m.count(EdgeKind::kHasSession), 1u);
  EXPECT_EQ(m.violations, 2u);
  EXPECT_DOUBLE_EQ(m.density, 5.0 / 30.0);
  EXPECT_EQ(m.max_in_degree, 2u);  // c has two in-edges
  EXPECT_FALSE(m.describe().empty());
}

}  // namespace
}  // namespace adsynth::analytics
