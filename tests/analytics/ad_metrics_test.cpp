#include "analytics/ad_metrics.hpp"

#include <gtest/gtest.h>

#include "core/generator.hpp"

namespace adsynth::analytics {
namespace {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

TEST(AdMetrics, HandBuiltFixture) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS");
  g.set_domain_admins(da);
  const NodeIndex g2 = g.add_named_node(ObjectKind::kGroup, "NESTED");
  const NodeIndex g3 = g.add_named_node(ObjectKind::kGroup, "EMPTY");
  const NodeIndex u1 = g.add_node(ObjectKind::kUser, 0,
                                  node_flag::kAdmin | node_flag::kEnabled);
  const NodeIndex u2 = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const NodeIndex u3 = g.add_node(ObjectKind::kUser, 2, 0);  // disabled
  const NodeIndex c1 = g.add_node(ObjectKind::kComputer);
  const NodeIndex c2 = g.add_node(ObjectKind::kComputer);
  g.add_edge(u1, da, EdgeKind::kMemberOf);
  g.add_edge(u2, g2, EdgeKind::kMemberOf);
  g.add_edge(g2, da, EdgeKind::kMemberOf);  // nesting depth 1
  g.add_edge(da, c1, EdgeKind::kAdminTo);
  g.add_edge(c1, u1, EdgeKind::kHasSession);
  g.add_edge(c1, u2, EdgeKind::kHasSession);
  (void)u3;
  (void)g3;
  (void)c2;

  const AdMetricsReport r = compute_ad_metrics(g);
  EXPECT_EQ(r.users, 3u);
  EXPECT_EQ(r.computers, 2u);
  EXPECT_EQ(r.groups, 3u);
  EXPECT_DOUBLE_EQ(r.enabled_user_ratio, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.admin_user_ratio, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.computers_with_admin_ratio, 0.5);
  EXPECT_DOUBLE_EQ(r.computers_with_session_ratio, 0.5);
  EXPECT_DOUBLE_EQ(r.mean_admins_per_computer, 0.5);
  EXPECT_DOUBLE_EQ(r.mean_sessions_per_computer, 1.0);
  EXPECT_EQ(r.domain_admin_members, 2u);  // u1 and the nested group
  EXPECT_DOUBLE_EQ(r.mean_groups_per_user, 2.0 / 3.0);
  EXPECT_EQ(r.empty_groups, 1u);
  EXPECT_EQ(r.max_group_nesting_depth, 1u);
  EXPECT_DOUBLE_EQ(r.mean_members_per_group, 3.0 / 3.0);
  EXPECT_FALSE(r.describe().empty());
}

TEST(AdMetrics, EmptyGraph) {
  const AdMetricsReport r = compute_ad_metrics(AttackGraph{});
  EXPECT_EQ(r.users, 0u);
  EXPECT_DOUBLE_EQ(r.enabled_user_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_sessions_per_computer, 0.0);
}

TEST(AdMetrics, GeneratedGraphIsHygienic) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(20000, 9));
  const AdMetricsReport r = compute_ad_metrics(ad.graph);
  // Realism ranges for a best-practice estate.
  EXPECT_GT(r.enabled_user_ratio, 0.75);
  EXPECT_LT(r.admin_user_ratio, 0.05);
  EXPECT_GT(r.mean_groups_per_user, 0.5);
  EXPECT_LT(r.mean_groups_per_user, 6.0);
  // Domain Admins stays minimal (primary + deputy).
  EXPECT_LE(r.domain_admin_members, 3u);
  EXPECT_GT(r.computers_with_session_ratio, 0.05);
  EXPECT_EQ(r.max_group_nesting_depth, 0u);  // ADSynth groups are flat
}

TEST(AdMetrics, DomainAdminsBloatVisible) {
  auto cfg = core::GeneratorConfig::vulnerable(20000, 9);
  const auto ad = core::generate_ad(cfg);
  const AdMetricsReport r = compute_ad_metrics(ad.graph);
  // Half of the tier-0 admins hold direct DA membership in sloppy estates.
  EXPECT_GT(r.domain_admin_members, 5u);
}

TEST(AdMetrics, NestingCyclesDoNotHang) {
  AttackGraph g;
  const NodeIndex a = g.add_named_node(ObjectKind::kGroup, "A");
  const NodeIndex b = g.add_named_node(ObjectKind::kGroup, "B");
  g.add_edge(a, b, EdgeKind::kMemberOf);
  g.add_edge(b, a, EdgeKind::kMemberOf);  // cycle (baseline soups do this)
  const AdMetricsReport r = compute_ad_metrics(g);
  // Cyclic groups never reach depth-0 status; the clamp just reports what
  // the acyclic part supports.
  EXPECT_EQ(r.max_group_nesting_depth, 0u);
}

}  // namespace
}  // namespace adsynth::analytics
