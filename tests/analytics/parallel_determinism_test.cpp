// The parallel analytics engine's contract: results are bit-identical at
// every thread count.  Chunk boundaries depend only on the workload and the
// ordered reduction fixes the floating-point bracketing, so running
// route_penetration / users_reaching_da / shortest_attack_paths at 1, 2 and
// 8 threads must produce exactly the same numbers — EXPECT_EQ on doubles,
// no tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "analytics/attack_paths.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "core/generator.hpp"
#include "util/parallel.hpp"

namespace adsynth::analytics {
namespace {

constexpr std::size_t kNodes = 10'000;
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

core::GeneratorConfig preset(const std::string& name) {
  if (name == "secure") return core::GeneratorConfig::secure(kNodes, 11);
  if (name == "vulnerable") {
    return core::GeneratorConfig::vulnerable(kNodes, 12);
  }
  return core::GeneratorConfig::highly_secure(kNodes, 13);
}

class ParallelDeterminism : public ::testing::TestWithParam<std::string> {
 protected:
  static void TearDownTestSuite() { util::set_global_threads(0); }
};

void expect_same_rp(const RpResult& a, const RpResult& b,
                    std::size_t threads) {
  EXPECT_EQ(a.contributing_sources, b.contributing_sources);
  EXPECT_EQ(a.evaluated_sources, b.evaluated_sources);
  EXPECT_EQ(a.sampled, b.sampled);
  ASSERT_EQ(a.rate.size(), b.rate.size());
  for (std::size_t v = 0; v < a.rate.size(); ++v) {
    ASSERT_EQ(a.rate[v], b.rate[v]) << "node " << v << " at " << threads
                                    << " threads";
  }
  ASSERT_EQ(a.edge_traffic.size(), b.edge_traffic.size());
  for (std::size_t e = 0; e < a.edge_traffic.size(); ++e) {
    ASSERT_EQ(a.edge_traffic[e], b.edge_traffic[e])
        << "edge " << e << " at " << threads << " threads";
  }
}

TEST_P(ParallelDeterminism, RoutePenetrationBitIdentical) {
  const auto ad = core::generate_ad(preset(GetParam()));
  RpOptions options;
  options.edge_traffic = true;
  util::set_global_threads(1);
  const RpResult baseline = route_penetration(ad.graph, options);
  // Only the vulnerable preset guarantees breached users at this size; the
  // secure presets may legitimately have no source reaching Domain Admins.
  if (GetParam() == "vulnerable") {
    EXPECT_GT(baseline.contributing_sources, 0u);
  }
  for (const std::size_t threads : kThreadCounts) {
    util::set_global_threads(threads);
    expect_same_rp(baseline, route_penetration(ad.graph, options), threads);
  }
}

TEST_P(ParallelDeterminism, UsersReachingDaBitIdentical) {
  const auto ad = core::generate_ad(preset(GetParam()));
  util::set_global_threads(1);
  const DaReachability baseline = users_reaching_da(ad.graph);
  for (const std::size_t threads : kThreadCounts) {
    util::set_global_threads(threads);
    const DaReachability run = users_reaching_da(ad.graph);
    EXPECT_EQ(baseline.regular_users, run.regular_users);
    EXPECT_EQ(baseline.users_with_path, run.users_with_path);
    EXPECT_EQ(baseline.fraction, run.fraction);
    ASSERT_EQ(baseline.distances, run.distances) << threads << " threads";
  }
}

TEST_P(ParallelDeterminism, ShortestAttackPathsBitIdentical) {
  const auto ad = core::generate_ad(preset(GetParam()));
  AttackPathOptions options;
  options.max_paths = 64;
  util::set_global_threads(1);
  const auto baseline = shortest_attack_paths(ad.graph, options);
  for (const std::size_t threads : kThreadCounts) {
    util::set_global_threads(threads);
    const auto run = shortest_attack_paths(ad.graph, options);
    ASSERT_EQ(baseline.size(), run.size()) << threads << " threads";
    for (std::size_t p = 0; p < baseline.size(); ++p) {
      EXPECT_EQ(baseline[p].source, run[p].source);
      ASSERT_EQ(baseline[p].hops.size(), run[p].hops.size());
      for (std::size_t h = 0; h < baseline[p].hops.size(); ++h) {
        EXPECT_EQ(baseline[p].hops[h].from, run[p].hops[h].from);
        EXPECT_EQ(baseline[p].hops[h].to, run[p].hops[h].to);
        EXPECT_EQ(baseline[p].hops[h].kind, run[p].hops[h].kind);
        EXPECT_EQ(baseline[p].hops[h].edge, run[p].hops[h].edge);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, ParallelDeterminism,
                         ::testing::Values("secure", "vulnerable",
                                           "highly_secure"));

}  // namespace
}  // namespace adsynth::analytics
