// Cross-cutting property sweep: global invariants that must hold for every
// generator, preset and scale — the "always true" contracts of the public
// API, checked end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "analytics/ad_metrics.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "analytics/sessions.hpp"
#include "baselines/adsimulator.hpp"
#include "baselines/dbcreator.hpp"
#include "baselines/university.hpp"
#include "core/generator.hpp"
#include "graphdb/csv_io.hpp"
#include "adcore/convert.hpp"

namespace adsynth {
namespace {

using adcore::AttackGraph;

struct Dataset {
  const char* name;
  AttackGraph (*make)(std::size_t nodes, std::uint64_t seed);
  std::size_t nodes;
};

AttackGraph make_secure(std::size_t nodes, std::uint64_t seed) {
  return core::generate_ad(core::GeneratorConfig::secure(nodes, seed)).graph;
}
AttackGraph make_vulnerable(std::size_t nodes, std::uint64_t seed) {
  return core::generate_ad(core::GeneratorConfig::vulnerable(nodes, seed))
      .graph;
}
AttackGraph make_highly_secure(std::size_t nodes, std::uint64_t seed) {
  return core::generate_ad(core::GeneratorConfig::highly_secure(nodes, seed))
      .graph;
}
AttackGraph make_db(std::size_t nodes, std::uint64_t seed) {
  baselines::DbCreatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::dbcreator_graph(cfg);
}
AttackGraph make_sim(std::size_t nodes, std::uint64_t seed) {
  baselines::AdSimulatorConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::adsimulator_graph(cfg);
}
AttackGraph make_uni(std::size_t nodes, std::uint64_t seed) {
  baselines::UniversityConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return baselines::university_graph(cfg);
}

class DatasetSweep : public ::testing::TestWithParam<Dataset> {
 protected:
  AttackGraph graph = GetParam().make(GetParam().nodes, 42);
};

TEST_P(DatasetSweep, MetricsAreInternallyConsistent) {
  const auto m = analytics::compute_metrics(graph);
  EXPECT_EQ(m.nodes, graph.node_count());
  EXPECT_EQ(m.edges, graph.edge_count());
  EXPECT_EQ(std::accumulate(m.nodes_by_kind.begin(), m.nodes_by_kind.end(),
                            std::size_t{0}),
            m.nodes);
  EXPECT_EQ(std::accumulate(m.edges_by_kind.begin(), m.edges_by_kind.end(),
                            std::size_t{0}),
            m.edges);
  EXPECT_GE(m.density, 0.0);
  EXPECT_LT(m.density, 1.0);
}

TEST_P(DatasetSweep, ReachabilityFractionsBounded) {
  const auto reach = analytics::users_reaching_da(graph);
  EXPECT_LE(reach.users_with_path, reach.regular_users);
  EXPECT_GE(reach.fraction, 0.0);
  EXPECT_LE(reach.fraction, 1.0);
  EXPECT_EQ(reach.distances.size(), reach.regular_users);
  // Distances are either unreachable or positive (a regular user is never
  // the DA group itself).
  for (const auto d : reach.distances) {
    EXPECT_TRUE(d == analytics::kUnreachable || d > 0);
  }
}

TEST_P(DatasetSweep, RpRatesAreProbabilities) {
  const auto rp = analytics::route_penetration(graph);
  EXPECT_EQ(rp.rate.size(), graph.node_count());
  for (const double r : rp.rate) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
  EXPECT_DOUBLE_EQ(rp.rate[graph.domain_admins()], 0.0);
  EXPECT_LE(rp.evaluated_sources, rp.contributing_sources);
  // Sources exist iff users reach DA.
  const auto reach = analytics::users_reaching_da(graph);
  EXPECT_EQ(rp.contributing_sources, reach.users_with_path);
}

TEST_P(DatasetSweep, AnalyticsAreDeterministic) {
  const auto rp1 = analytics::route_penetration(graph);
  const auto rp2 = analytics::route_penetration(graph);
  EXPECT_EQ(rp1.rate, rp2.rate);
  const auto s1 = analytics::session_stats(graph);
  const auto s2 = analytics::session_stats(graph);
  EXPECT_EQ(s1.counts, s2.counts);
}

TEST_P(DatasetSweep, SessionStatsConsistent) {
  const auto s = analytics::session_stats(graph);
  std::size_t sum = 0;
  for (const auto c : s.counts) {
    sum += c;
    EXPECT_LE(c, s.peak);
  }
  EXPECT_EQ(sum, s.total_sessions);
  const auto top = s.top(10);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i], top[i - 1]);
  }
}

TEST_P(DatasetSweep, AdMetricsRatiosBounded) {
  const auto r = analytics::compute_ad_metrics(graph);
  for (const double ratio :
       {r.enabled_user_ratio, r.admin_user_ratio,
        r.computers_with_admin_ratio, r.computers_with_session_ratio}) {
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
  EXPECT_LE(r.empty_groups, r.groups);
}

TEST_P(DatasetSweep, StoreRoundTripPreservesCounts) {
  const auto store = adcore::to_store(graph);
  EXPECT_EQ(store.node_count(), graph.node_count());
  EXPECT_EQ(store.rel_count(), graph.edge_count());
  // CSV row counts match (header + one line per record).
  std::ostringstream nodes_csv;
  graphdb::export_nodes_csv(store, nodes_csv);
  const std::string csv = nodes_csv.str();
  const auto newlines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(newlines, graph.node_count() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, DatasetSweep,
    ::testing::Values(Dataset{"secure_small", &make_secure, 1000},
                      Dataset{"secure_mid", &make_secure, 8000},
                      Dataset{"vulnerable_small", &make_vulnerable, 1000},
                      Dataset{"vulnerable_mid", &make_vulnerable, 8000},
                      Dataset{"highly_secure", &make_highly_secure, 4000},
                      Dataset{"dbcreator", &make_db, 1500},
                      Dataset{"adsimulator", &make_sim, 1500},
                      Dataset{"university", &make_uni, 8000}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace adsynth
