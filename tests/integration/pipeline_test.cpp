// End-to-end integration: generate → export (APOC JSON) → import → convert
// → analyze, across generators, with cross-representation consistency.
#include <gtest/gtest.h>

#include <sstream>

#include "adcore/convert.hpp"
#include "analytics/metrics.hpp"
#include "analytics/reachability.hpp"
#include "analytics/rp_rate.hpp"
#include "baselines/dbcreator.hpp"
#include "baselines/university.hpp"
#include "core/export.hpp"
#include "core/generator.hpp"
#include "graphdb/neo4j_io.hpp"
#include "metagraph/algorithms.hpp"

namespace adsynth {
namespace {

using adcore::AttackGraph;

TEST(Pipeline, AdsynthJsonRoundTripPreservesAnalytics) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(3000, 21));

  std::stringstream buffer;
  graphdb::export_apoc_json(core::to_store(ad), buffer);
  const AttackGraph back =
      adcore::from_store(graphdb::import_apoc_json(buffer));

  ASSERT_EQ(back.node_count(), ad.graph.node_count());
  ASSERT_EQ(back.edge_count(), ad.graph.edge_count());
  ASSERT_NE(back.domain_admins(), adcore::kNoNodeIndex);

  // Security analytics must be identical on both representations.
  const auto reach_orig = analytics::users_reaching_da(ad.graph);
  const auto reach_back = analytics::users_reaching_da(back);
  EXPECT_EQ(reach_orig.users_with_path, reach_back.users_with_path);
  EXPECT_EQ(reach_orig.regular_users, reach_back.regular_users);
  EXPECT_DOUBLE_EQ(analytics::route_penetration(ad.graph).peak(),
                   analytics::route_penetration(back).peak());
}

TEST(Pipeline, ElementToElementExportRoundTrips) {
  auto cfg = core::GeneratorConfig::secure(1500, 22);
  const auto ad = core::generate_ad(cfg);
  const std::string path =
      ::testing::TempDir() + "/adsynth_e2e_export.json";
  core::export_json(ad, path, /*element_to_element=*/true);
  const AttackGraph flat =
      adcore::from_store(graphdb::import_apoc_json_file(path));
  EXPECT_EQ(flat.node_count(), ad.meta.element_count());
}

TEST(Pipeline, DbCreatorStoreSurvivesJsonRoundTrip) {
  baselines::DbCreatorConfig cfg;
  cfg.target_nodes = 500;
  const auto run = baselines::run_dbcreator(cfg);
  std::stringstream buffer;
  graphdb::export_apoc_json(run.store, buffer);
  const auto imported = graphdb::import_apoc_json(buffer);
  EXPECT_EQ(imported.node_count(), run.store.node_count());
  EXPECT_EQ(imported.rel_count(), run.store.rel_count());
}

TEST(Pipeline, MetagraphReachabilityAgreesWithGraphReachability) {
  // Disjunctive metagraph reachability from a breached user's singleton
  // must reach the same leaf objects as BFS on the attack graph restricted
  // to expanded edges.  We verify agreement on the Domain Admins members.
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(1500, 23));
  const auto reach = analytics::users_reaching_da(ad.graph);
  ASSERT_GT(reach.users_with_path, 0u);

  // Pick one breached user.
  const auto users = analytics::regular_users(ad.graph);
  adcore::NodeIndex breached = adcore::kNoNodeIndex;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (reach.distances[i] != analytics::kUnreachable) {
      breached = users[i];
      break;
    }
  }
  ASSERT_NE(breached, adcore::kNoNodeIndex);

  // Metagraph reach (disjunctive) from that user's element.
  metagraph::ElementId element = metagraph::kNoElement;
  for (metagraph::ElementId e = 0; e < ad.meta.element_count(); ++e) {
    if (ad.node_of_element[e] == breached) {
      element = e;
      break;
    }
  }
  ASSERT_NE(element, metagraph::kNoElement);
  const auto mg_reach =
      metagraph::reach(ad.meta, {element}, metagraph::ReachMode::kDisjunctive);
  // The metagraph covers permission/session edges only (no Contains/
  // MemberOf hops), so it reaches a subset of the graph BFS; the subset
  // must at least contain the user itself and be non-trivial for a
  // breached user (its violated permission fires).
  EXPECT_GE(mg_reach.reached_count(), 2u);
}

TEST(Pipeline, UniversityAndAdsynthSecureAgreeOnShape) {
  // The §IV comparison in miniature: AD100-style secure graph vs the
  // University reference at the same scale agree on the metrics' order of
  // magnitude.
  const std::size_t n = 20000;
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(n, 24));
  baselines::UniversityConfig uni;
  uni.target_nodes = n;
  const AttackGraph u = baselines::university_graph(uni);

  const auto m_ad = analytics::compute_metrics(ad.graph);
  const auto m_uni = analytics::compute_metrics(u);
  EXPECT_LT(m_ad.density / m_uni.density, 10.0);
  EXPECT_GT(m_ad.density / m_uni.density, 0.1);

  const auto r_ad = analytics::users_reaching_da(ad.graph);
  const auto r_uni = analytics::users_reaching_da(u);
  EXPECT_LT(r_ad.fraction, 0.005);
  EXPECT_LT(r_uni.fraction, 0.005);
}

TEST(Pipeline, GeneratedConfigTravelsWithGraph) {
  // Configs serialize next to exports and reproduce the same graph.
  auto cfg = core::GeneratorConfig::secure(1200, 77);
  const std::string json = cfg.to_json();
  const auto cfg2 = core::GeneratorConfig::from_json(json);
  const auto a = core::generate_ad(cfg);
  const auto b = core::generate_ad(cfg2);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

}  // namespace
}  // namespace adsynth
