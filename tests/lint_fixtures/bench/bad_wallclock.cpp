// Fixture: wall-clock reads outside util/timer must trip the wall-clock
// rule — timestamps leak nondeterminism into otherwise seeded outputs.
#include <chrono>
#include <ctime>

long fixture_bad_wallclock() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t stamp = std::time(nullptr);
  (void)now;
  return static_cast<long>(stamp);
}
