// Clean fixture for io-error-checked: every stdio result is consumed,
// plus the near-misses the rule must not confuse with libc — member
// .remove()/.rename(), other-namespace qualifiers, and the tokens inside
// comments and string literals.  Any finding here is a false positive.
#include <cstdio>
#include <string>

namespace detail {
void remove(int);
void rename(int, int);
}  // namespace detail

struct Registry {
  void remove(int id);
  void rename(int id, int next);
};

bool save(std::FILE* f, const char* buf, unsigned long n, Registry& r) {
  if (std::fwrite(buf, 1, n, f) != n) return false;
  const long at = std::ftell(f);
  const int flushed = std::fflush(f);
  r.remove(3);          // member access, not the libc remove
  r.rename(1, 2);       // ditto
  detail::remove(4);    // other-namespace qualifier, own error contract
  detail::rename(5, 6);
  const std::string note = "call fclose(file) and fflush(file) here";
  // fwrite(buf, 1, n, f); — commented-out code must stay silent
  return flushed == 0 && at >= 0 && std::fclose(f) == 0;
}
