// Fixture: token-awareness.  Banned tokens inside string literals, raw
// strings and near-miss identifiers must stay silent — v1's substring
// matcher would have fired on every line below.
#include <string>

std::string fixture_strings_ok() {
  const char* doc = "std::rand system_clock unordered_map std::mutex";
  const char* raw = R"(steady_clock::now( mt19937 random_device)";
  int steady_clockwork = 0;        // near-miss identifier, not steady_clock
  int mutex_count = steady_clockwork + 1;  // near-miss for 'mutex'
  return std::string(doc) + raw + std::to_string(mutex_count);
}
