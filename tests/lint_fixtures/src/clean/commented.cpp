// Fixture: banned tokens in comments must NOT fire — this file proves the
// lint matches comment-stripped text.  Mentioning std::rand, srand(42),
// random_device, mt19937 or system_clock in prose is fine.
/* Block comments too: uniform_int_distribution, time(nullptr),
   unordered_map iteration, gettimeofday. */

int fixture_clean() {
  return 7;  // inline comment naming std::shuffle and localtime is fine too
}
