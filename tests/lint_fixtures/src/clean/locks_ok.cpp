// Fixture: the sanctioned concurrency vocabulary must not fire
// lock-wrapper or atomic rules: util::Mutex/MutexLock are the annotated
// wrappers, std::condition_variable_any is a distinct token from the
// banned std::condition_variable, and explicitly-ordered atomics pass
// the ordering audit.
#include <atomic>
#include <condition_variable>
#include <cstdint>

namespace util {
struct Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex&);
};
}  // namespace util

std::uint64_t fixture_locks_ok(util::Mutex& m) {
  util::MutexLock lock(m);
  std::condition_variable_any cv;
  (void)cv;
  std::atomic<std::uint64_t> seq{0};
  seq.store(1, std::memory_order_release);
  return seq.load(std::memory_order_acquire);
}
