// Fixture: a direct monotonic-clock read outside util/timer and util/trace.
// Must fire monotonic-clock (and wall-clock, whose broader token also
// matches) — the sanctioned path is util::monotonic_ns().
#include <chrono>
#include <cstdint>

std::uint64_t bad_monotonic_read() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(now.time_since_epoch().count());
}
