// Fixture: an allow() directive with no matching finding on its line (or
// the line after) is rot and must trip unused-suppression.
// adsynth-lint: allow(wall-clock): stale on purpose — nothing below reads a clock
int fixture_stale_suppress() {
  return 42;
}
