// Fixture: missing #pragma once and a top-level using-namespace — both
// must trip the include-hygiene rule.
#include <string>

using namespace std;

inline string fixture_bad_header() { return "oops"; }
