// Fixture: unordered containers in analytics/ must be allowlisted — an
// accumulation like the one below visits elements in hash order, so the
// floating-point sum differs across standard libraries.
#include <unordered_map>

double fixture_bad_unordered() {
  std::unordered_map<int, double> weights{{1, 0.25}, {2, 0.5}};
  double total = 0.0;
  for (const auto& [node, weight] : weights) {
    (void)node;
    total += weight;
  }
  return total;
}
