// Fixture: every line below must trip the nondeterministic-random rule.
#include <cstdlib>
#include <random>

int fixture_bad_random() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_int_distribution<int> dist(0, 9);
  std::srand(42);
  return dist(gen) + std::rand();
}
