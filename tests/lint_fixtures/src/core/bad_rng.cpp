// Fixture: RNG-stream discipline in the sharded generator (src/core/).
// Rng::fork() depends on the parent's draw count, and default-seeded Rng
// construction silently ignores the config seed — both trip rng-stream.
namespace util {
struct Rng {
  Rng stream(unsigned long long) const;
  Rng fork();
};
}  // namespace util

util::Rng fixture_bad_rng(util::Rng& parent) {
  util::Rng implicit_seed;
  auto child = parent.fork();
  (void)implicit_seed;
  return child;
}
