// Fixture: an atomic-relaxed violation suppressed by the *allowlist*
// (tests/lint_fixtures/lint_allowlist.txt), not an inline directive.
// Proves path-level entries still work in v2 and are tracked as used.
#include <atomic>
#include <cstdint>

std::uint64_t fixture_allowlisted_relaxed() {
  std::atomic<std::uint64_t> hits{0};
  hits.fetch_add(1, std::memory_order_relaxed);
  return hits.load(std::memory_order_seq_cst);
}
