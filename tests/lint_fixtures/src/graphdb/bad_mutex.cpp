// Fixture: raw std locking primitives in src/ outside util/annotations.hpp
// must trip lock-wrapper — the thread-safety analysis cannot see through
// them.  Every std::-qualified use below fires.
#include <condition_variable>
#include <mutex>

int fixture_bad_mutex() {
  std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  std::unique_lock<std::mutex> ul(m, std::defer_lock);
  std::condition_variable cv;
  (void)ul;
  (void)cv;
  return 1;
}
