// Fixture: a real atomic-relaxed violation intercepted by an inline
// suppression.  The self-test asserts this file reports *nothing* and
// that the directive was consumed (recorded under "suppressed") — proof
// allow() works and is tracked.
#include <atomic>
#include <cstdint>

std::uint64_t fixture_suppressed_ok() {
  std::atomic<std::uint64_t> counter{0};
  // adsynth-lint: allow(atomic-relaxed): fixture invariant — monotonic counter, readers tolerate staleness
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_acquire);
}
