// Fixture: atomic operations in src/graphdb/ must spell their
// memory_order.  The implicit-seq_cst calls below trip atomic-ordering;
// the relaxed op trips atomic-relaxed (this path is not allowlisted and
// carries no inline suppression).
#include <atomic>
#include <cstdint>

std::uint64_t fixture_bad_atomic() {
  std::atomic<std::uint64_t> epoch{0};
  epoch.store(1);
  epoch.fetch_add(2);
  std::uint64_t snapshot = epoch.load();
  std::uint64_t racy = epoch.load(std::memory_order_relaxed);
  std::uint64_t expected = 3;
  epoch.compare_exchange_strong(expected, snapshot);
  return snapshot + racy;
}
