// Fixture: discarded stdio results.  Every call below drops an error
// signal the durable-storage path depends on — io-error-checked must
// flag each one.  The checked counterparts live in src/clean/io_ok.cpp.
#include <cstdio>

void flush_unchecked(std::FILE* f, const char* buf, unsigned long n) {
  std::fwrite(buf, 1, n, f);  // short write lost in statement position
  fflush(f);                  // bare libc call, result dropped
  std::fseek(f, 0, SEEK_SET);
  (void)std::fclose(f);  // explicit discard is still an unchecked close
}

void swap_files_unchecked(const char* from, const char* to) {
  remove(to);
  std::rename(from, to);  // the atomic-replace step of a checkpoint
}
