#include "adcore/schema.hpp"

#include <gtest/gtest.h>

#include "adcore/naming.hpp"
#include "util/strings.hpp"

namespace adsynth::adcore {
namespace {

TEST(ObjectKind, LabelRoundTrip) {
  for (std::size_t k = 0; k < kObjectKindCount; ++k) {
    const auto kind = static_cast<ObjectKind>(k);
    const auto parsed = parse_object_kind(object_kind_label(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_object_kind("Gremlin").has_value());
}

TEST(EdgeKind, NameRoundTripForAllKinds) {
  for (std::size_t k = 0; k < kEdgeKindCount; ++k) {
    const auto kind = static_cast<EdgeKind>(k);
    const auto parsed = parse_edge_kind(edge_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << edge_kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_edge_kind("FlyTo").has_value());
}

TEST(EdgeKind, AclClassificationMatchesPaper) {
  // Paper §III-A: ACL permissions include WriteOwner, ForceChangePassword,
  // GenericAll; non-ACL permissions include CanRDP, ExecuteDCOM.
  EXPECT_TRUE(is_acl_permission(EdgeKind::kGenericAll));
  EXPECT_TRUE(is_acl_permission(EdgeKind::kWriteOwner));
  EXPECT_TRUE(is_acl_permission(EdgeKind::kForceChangePassword));
  EXPECT_FALSE(is_acl_permission(EdgeKind::kCanRDP));
  EXPECT_FALSE(is_acl_permission(EdgeKind::kExecuteDCOM));
  EXPECT_FALSE(is_acl_permission(EdgeKind::kHasSession));
  EXPECT_FALSE(is_acl_permission(EdgeKind::kMemberOf));

  EXPECT_TRUE(is_non_acl_permission(EdgeKind::kCanRDP));
  EXPECT_TRUE(is_non_acl_permission(EdgeKind::kExecuteDCOM));
  EXPECT_TRUE(is_non_acl_permission(EdgeKind::kAdminTo));
  EXPECT_FALSE(is_non_acl_permission(EdgeKind::kGenericAll));
  EXPECT_FALSE(is_non_acl_permission(EdgeKind::kHasSession));
  EXPECT_FALSE(is_non_acl_permission(EdgeKind::kContains));
}

TEST(EdgeKind, TraversabilityEncodesSnowballSemantics) {
  EXPECT_TRUE(is_traversable(EdgeKind::kMemberOf));
  EXPECT_TRUE(is_traversable(EdgeKind::kHasSession));
  EXPECT_TRUE(is_traversable(EdgeKind::kAdminTo));
  EXPECT_TRUE(is_traversable(EdgeKind::kGenericAll));
  EXPECT_TRUE(is_traversable(EdgeKind::kContains));
  EXPECT_TRUE(is_traversable(EdgeKind::kDCSync));
  // GetChanges alone is not enough to DCSync.
  EXPECT_FALSE(is_traversable(EdgeKind::kGetChanges));
  EXPECT_FALSE(is_traversable(EdgeKind::kGetChangesAll));
  // RDP gives an unprivileged session, not control of the machine.
  EXPECT_FALSE(is_traversable(EdgeKind::kCanRDP));
}

TEST(EdgeKind, PermissionPoolsAreConsistent) {
  for (const EdgeKind kind : acl_permission_pool()) {
    EXPECT_TRUE(is_acl_permission(kind)) << edge_kind_name(kind);
  }
  for (const EdgeKind kind : non_acl_permission_pool()) {
    EXPECT_TRUE(is_non_acl_permission(kind)) << edge_kind_name(kind);
  }
  EXPECT_FALSE(acl_permission_pool().empty());
  EXPECT_FALSE(non_acl_permission_pool().empty());
}

TEST(Naming, UserAndComputerNames) {
  util::Rng rng(1);
  const std::string user = make_user_logon_name(rng, 42);
  EXPECT_NE(user.find("00042"), std::string::npos);
  EXPECT_EQ(user, util::to_upper(user));
  EXPECT_EQ(make_computer_name("WS", 7), "WS00007");
}

TEST(Naming, DistinguishedNames) {
  EXPECT_EQ(domain_to_dn("corp.local"), "DC=corp,DC=local");
  EXPECT_EQ(make_ou_dn({"Workstations", "Tier 2"}, "DC=corp,DC=local"),
            "OU=Workstations,OU=Tier 2,DC=corp,DC=local");
}

TEST(Naming, DefaultPoolsNonEmpty) {
  EXPECT_GE(default_departments().size(), 2u);
  EXPECT_GE(default_locations().size(), 1u);
  EXPECT_GE(first_names().size(), 10u);
  EXPECT_GE(last_names().size(), 10u);
  EXPECT_FALSE(workstation_os_pool().empty());
  EXPECT_FALSE(server_os_pool().empty());
}

}  // namespace
}  // namespace adsynth::adcore
