#include "adcore/bloodhound_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <filesystem>

#include "adcore/convert.hpp"
#include "core/generator.hpp"
#include "graphdb/store.hpp"
#include "util/json.hpp"

namespace adsynth::adcore {
namespace {

util::JsonValue load(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return util::JsonValue::parse(buffer.str());
}

class BloodhoundIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case directory: ctest runs each case as its own process, so a
    // shared path would let one case read files another is rewriting.
    dir = ::testing::TempDir() + "/bh_export_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir);
    ad = core::generate_ad(core::GeneratorConfig::secure(1500, 13));
    export_bloodhound_collection(ad.graph, dir, "corp.local", 77);
  }

  std::string dir;
  core::GeneratedAd ad;
};

TEST_F(BloodhoundIoTest, SixClassFilesWithMetaCounts) {
  const struct {
    const char* file;
    ObjectKind kind;
    const char* type;
  } classes[] = {
      {"users.json", ObjectKind::kUser, "users"},
      {"computers.json", ObjectKind::kComputer, "computers"},
      {"groups.json", ObjectKind::kGroup, "groups"},
      {"ous.json", ObjectKind::kOU, "ous"},
      {"gpos.json", ObjectKind::kGPO, "gpos"},
      {"domains.json", ObjectKind::kDomain, "domains"},
  };
  for (const auto& c : classes) {
    const auto doc = load(dir + "/" + c.file);
    const auto expected = ad.graph.nodes_of_kind(c.kind).size();
    EXPECT_EQ(static_cast<std::size_t>(doc.at("meta").at("count").as_int()),
              expected)
        << c.file;
    EXPECT_EQ(doc.at("meta").at("type").as_string(), c.type);
    EXPECT_EQ(doc.at("data").as_array().size(), expected);
  }
}

TEST_F(BloodhoundIoTest, ObjectsCarryIdentifiersAndProperties) {
  const auto users = load(dir + "/users.json");
  ASSERT_FALSE(users.at("data").as_array().empty());
  const auto& first = users.at("data").as_array().front();
  EXPECT_TRUE(first.contains("ObjectIdentifier"));
  // Principals are identified by SID.
  EXPECT_EQ(first.at("ObjectIdentifier").as_string().rfind("S-1-5-21-", 0),
            0u);
  const auto& props = first.at("Properties");
  EXPECT_TRUE(props.contains("name"));
  EXPECT_EQ(props.at("domain").as_string(), "CORP.LOCAL");
  EXPECT_TRUE(props.contains("enabled"));
  EXPECT_TRUE(first.contains("Aces"));
}

TEST_F(BloodhoundIoTest, GroupMembersMatchGraph) {
  const auto groups = load(dir + "/groups.json");
  std::size_t total_members = 0;
  for (const auto& g : groups.at("data").as_array()) {
    total_members += g.at("Members").as_array().size();
  }
  std::size_t member_edges = 0;
  for (const auto& e : ad.graph.edges()) {
    member_edges += e.kind == EdgeKind::kMemberOf ? 1 : 0;
  }
  EXPECT_EQ(total_members, member_edges);
}

TEST_F(BloodhoundIoTest, SessionsMatchGraph) {
  const auto computers = load(dir + "/computers.json");
  std::size_t total_sessions = 0;
  for (const auto& c : computers.at("data").as_array()) {
    total_sessions += c.at("Sessions").as_array().size();
  }
  EXPECT_EQ(total_sessions,
            ad.stats.session_edges + ad.stats.violation_sessions);
}

TEST_F(BloodhoundIoTest, AcesRecordInboundRights) {
  // Every ACL/non-ACL permission edge appears exactly once, on its target.
  std::size_t permission_edges = 0;
  for (const auto& e : ad.graph.edges()) {
    if (is_acl_permission(e.kind) || is_non_acl_permission(e.kind)) {
      ++permission_edges;
    }
  }
  std::size_t total_aces = 0;
  for (const char* file : {"users.json", "computers.json", "groups.json",
                           "ous.json", "gpos.json", "domains.json"}) {
    const auto doc = load(dir + "/" + std::string(file));
    for (const auto& obj : doc.at("data").as_array()) {
      total_aces += obj.at("Aces").as_array().size();
    }
  }
  EXPECT_EQ(total_aces, permission_edges);
}

TEST_F(BloodhoundIoTest, IdsMatchApocExportForSameSeed) {
  const auto store = to_store(ad.graph, "corp.local", 77);
  const auto users = load(dir + "/users.json");
  // Find the store node whose name matches the first collector user and
  // compare SIDs.
  const auto& first = users.at("data").as_array().front();
  const std::string& name = first.at("Properties").at("name").as_string();
  const auto matches =
      store.find_nodes("User", "name", graphdb::PropertyValue(name));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(store.node_property(matches[0], "objectsid")->as_string(),
            first.at("ObjectIdentifier").as_string());
}

TEST(BloodhoundIo, BadDirectoryThrows) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(800, 1));
  EXPECT_THROW(
      export_bloodhound_collection(ad.graph, "/nonexistent/dir/xyz"),
      std::runtime_error);
}

}  // namespace
}  // namespace adsynth::adcore
