#include "adcore/attack_graph.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adcore/convert.hpp"
#include "graphdb/neo4j_io.hpp"

namespace adsynth::adcore {
namespace {

TEST(AttackGraph, NodesCarryKindTierFlags) {
  AttackGraph g;
  const NodeIndex u = g.add_node(ObjectKind::kUser, 2,
                                 node_flag::kAdmin | node_flag::kEnabled);
  EXPECT_EQ(g.kind(u), ObjectKind::kUser);
  EXPECT_EQ(g.tier(u), 2);
  EXPECT_TRUE(g.has_flag(u, node_flag::kAdmin));
  EXPECT_TRUE(g.has_flag(u, node_flag::kEnabled));
  EXPECT_FALSE(g.has_flag(u, node_flag::kServer));
  EXPECT_TRUE(g.name(u).empty());
}

TEST(AttackGraph, NamedNodes) {
  AttackGraph g;
  const NodeIndex n = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0);
  EXPECT_EQ(g.name(n), "DOMAIN ADMINS");
  g.set_name(n, "RENAMED");
  EXPECT_EQ(g.name(n), "RENAMED");
}

TEST(AttackGraph, EdgesValidated) {
  AttackGraph g;
  const NodeIndex a = g.add_node(ObjectKind::kUser);
  const NodeIndex b = g.add_node(ObjectKind::kGroup);
  g.add_edge(a, b, EdgeKind::kMemberOf);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_THROW(g.add_edge(a, 99, EdgeKind::kMemberOf), std::out_of_range);
  EXPECT_THROW(g.add_edge(99, b, EdgeKind::kMemberOf), std::out_of_range);
}

TEST(AttackGraph, DensityDefinitionMatchesPaper) {
  AttackGraph g;
  // density = |E| / (|V|·(|V|−1)).
  const NodeIndex a = g.add_node(ObjectKind::kUser);
  const NodeIndex b = g.add_node(ObjectKind::kUser);
  g.add_node(ObjectKind::kUser);
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
  g.add_edge(a, b, EdgeKind::kGenericAll);
  EXPECT_DOUBLE_EQ(g.density(), 1.0 / 6.0);
}

TEST(AttackGraph, DensityOfTrivialGraphsIsZero) {
  AttackGraph g;
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
  g.add_node(ObjectKind::kUser);
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
}

TEST(AttackGraph, ViolationCountTracksMisconfigEdges) {
  AttackGraph g;
  const NodeIndex a = g.add_node(ObjectKind::kUser);
  const NodeIndex b = g.add_node(ObjectKind::kComputer);
  g.add_edge(a, b, EdgeKind::kExecuteDCOM, /*violation=*/true);
  g.add_edge(b, a, EdgeKind::kHasSession, /*violation=*/false);
  EXPECT_EQ(g.violation_count(), 1u);
}

TEST(AttackGraph, NodesOfKind) {
  AttackGraph g;
  g.add_node(ObjectKind::kUser);
  g.add_node(ObjectKind::kComputer);
  g.add_node(ObjectKind::kUser);
  EXPECT_EQ(g.nodes_of_kind(ObjectKind::kUser).size(), 2u);
  EXPECT_EQ(g.nodes_of_kind(ObjectKind::kGPO).size(), 0u);
}

TEST(AttackGraph, DomainAdminsMarker) {
  AttackGraph g;
  EXPECT_EQ(g.domain_admins(), kNoNodeIndex);
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS");
  g.set_domain_admins(da);
  EXPECT_EQ(g.domain_admins(), da);
}

TEST(Convert, StoreRoundTripPreservesStructure) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0,
                                        node_flag::kSecurityGroup);
  g.set_domain_admins(da);
  const NodeIndex domain = g.add_named_node(ObjectKind::kDomain, "CORP.LOCAL", 0);
  g.set_domain_node(domain);
  const NodeIndex u = g.add_named_node(
      ObjectKind::kUser, "ALICE", 2, node_flag::kEnabled | node_flag::kAdmin);
  const NodeIndex c = g.add_named_node(ObjectKind::kComputer, "WS1", 2);
  g.add_edge(u, da, EdgeKind::kMemberOf);
  g.add_edge(c, u, EdgeKind::kHasSession, /*violation=*/true);
  g.add_edge(da, domain, EdgeKind::kGenericAll);

  const graphdb::GraphStore store = to_store(g, "corp.local");
  EXPECT_EQ(store.node_count(), g.node_count());
  EXPECT_EQ(store.rel_count(), g.edge_count());

  const AttackGraph back = from_store(store);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_NE(back.domain_admins(), kNoNodeIndex);
  EXPECT_EQ(back.name(back.domain_admins()), "DOMAIN ADMINS");
  EXPECT_NE(back.domain_node(), kNoNodeIndex);
  EXPECT_EQ(back.violation_count(), 1u);
  // Tier and flags restored.
  bool alice_found = false;
  for (NodeIndex i = 0; i < back.node_count(); ++i) {
    if (back.name(i) == "ALICE") {
      alice_found = true;
      EXPECT_EQ(back.tier(i), 2);
      EXPECT_TRUE(back.has_flag(i, node_flag::kAdmin));
      EXPECT_TRUE(back.has_flag(i, node_flag::kEnabled));
    }
  }
  EXPECT_TRUE(alice_found);
}

TEST(Convert, FullJsonRoundTrip) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS");
  g.set_domain_admins(da);
  const NodeIndex u = g.add_named_node(ObjectKind::kUser, "BOB", 1,
                                       node_flag::kEnabled);
  g.add_edge(u, da, EdgeKind::kMemberOf);

  std::stringstream buffer;
  graphdb::export_apoc_json(to_store(g, "x.local"), buffer);
  const AttackGraph back =
      from_store(graphdb::import_apoc_json(buffer));
  EXPECT_EQ(back.node_count(), 2u);
  EXPECT_EQ(back.edge_count(), 1u);
  EXPECT_NE(back.domain_admins(), kNoNodeIndex);
}

TEST(Convert, UnnamedNodesGetSyntheticNames) {
  AttackGraph g;
  g.add_node(ObjectKind::kComputer);
  const graphdb::GraphStore store = to_store(g);
  EXPECT_EQ(store.node_property(0, "name")->as_string(), "Computer-0");
}

TEST(Convert, UnknownRelTypeRejectedOnImport) {
  graphdb::GraphStore store;
  const auto a = store.create_node({"User"});
  const auto b = store.create_node({"User"});
  store.create_relationship(a, b, "Teleports");
  EXPECT_THROW(from_store(store), std::runtime_error);
}

TEST(Convert, NodeWithoutAdLabelRejected) {
  graphdb::GraphStore store;
  store.create_node({"Mystery"});
  EXPECT_THROW(from_store(store), std::runtime_error);
}

}  // namespace
}  // namespace adsynth::adcore
