// Tests for the honeypot-placement application ([21]).
#include "defense/honeypot.hpp"

#include <gtest/gtest.h>

#include "core/generator.hpp"

namespace adsynth::defense {
namespace {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

/// Funnel: u0,u1 -> c -> a -> DA.  One honeypot on c (or a) covers all.
struct Funnel {
  AttackGraph g;
  NodeIndex da, c, a;

  Funnel() {
    da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0);
    g.set_domain_admins(da);
    c = g.add_named_node(ObjectKind::kComputer, "C", 0);
    a = g.add_named_node(ObjectKind::kUser, "A", 0,
                         node_flag::kAdmin | node_flag::kEnabled);
    for (int i = 0; i < 2; ++i) {
      const NodeIndex u =
          g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
      g.add_edge(u, c, EdgeKind::kExecuteDCOM);
    }
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
  }
};

TEST(Honeypot, FunnelCoveredByOnePlacement) {
  Funnel f;
  HoneypotOptions options;
  options.count = 1;
  const HoneypotResult result = place_honeypots(f.g, options);
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_TRUE(result.placements[0] == f.c || result.placements[0] == f.a);
  EXPECT_DOUBLE_EQ(result.final_coverage(), 1.0);
}

TEST(Honeypot, ComputersOnlyRestrictsCandidates) {
  Funnel f;
  HoneypotOptions options;
  options.count = 1;
  options.computers_only = true;
  const HoneypotResult result = place_honeypots(f.g, options);
  ASSERT_EQ(result.placements.size(), 1u);
  EXPECT_EQ(result.placements[0], f.c);
}

TEST(Honeypot, ParallelRoutesNeedMultiplePlacements) {
  // Two disjoint funnels: one honeypot covers half, two cover all.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  for (int i = 0; i < 2; ++i) {
    const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
    const NodeIndex c = g.add_node(ObjectKind::kComputer);
    const NodeIndex a = g.add_node(ObjectKind::kUser, 0,
                                   node_flag::kAdmin | node_flag::kEnabled);
    g.add_edge(u, c, EdgeKind::kExecuteDCOM);
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
  }
  HoneypotOptions options;
  options.count = 2;
  const HoneypotResult result = place_honeypots(g, options);
  ASSERT_EQ(result.placements.size(), 2u);
  ASSERT_EQ(result.coverage_after.size(), 2u);
  EXPECT_DOUBLE_EQ(result.coverage_after[0], 0.5);
  EXPECT_DOUBLE_EQ(result.coverage_after[1], 1.0);
}

TEST(Honeypot, CoverageIsMonotone) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(5000, 4));
  HoneypotOptions options;
  options.count = 5;
  const HoneypotResult result = place_honeypots(ad.graph, options);
  ASSERT_FALSE(result.coverage_after.empty());
  for (std::size_t i = 1; i < result.coverage_after.size(); ++i) {
    EXPECT_GE(result.coverage_after[i], result.coverage_after[i - 1] - 1e-12);
  }
  EXPECT_GT(result.final_coverage(), 0.0);
  EXPECT_LE(result.final_coverage(), 1.0);
}

TEST(Honeypot, NeverPlacesOnSourcesOrTarget) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(5000, 5));
  HoneypotOptions options;
  options.count = 4;
  const HoneypotResult result = place_honeypots(ad.graph, options);
  for (const NodeIndex v : result.placements) {
    EXPECT_NE(v, ad.graph.domain_admins());
    const bool is_regular =
        ad.graph.kind(v) == ObjectKind::kUser &&
        ad.graph.has_flag(v, node_flag::kEnabled) &&
        !ad.graph.has_flag(v, node_flag::kAdmin);
    EXPECT_FALSE(is_regular) << "honeypot on an attacker entry account";
  }
}

TEST(Honeypot, NoPathsNoPlacements) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const HoneypotResult result = place_honeypots(g);
  EXPECT_TRUE(result.placements.empty());
  EXPECT_DOUBLE_EQ(result.final_coverage(), 0.0);
}

TEST(Honeypot, MissingDaThrows) {
  AttackGraph g;
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  EXPECT_THROW(place_honeypots(g), std::logic_error);
}

TEST(Honeypot, SecureGraphChokePointsYieldHighCoverage) {
  // Secure ADSynth graphs funnel through few nodes (Fig. 10c), so a couple
  // of honeypots intercept almost everything.
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(20000, 1));
  HoneypotOptions options;
  options.count = 3;
  const HoneypotResult result = place_honeypots(ad.graph, options);
  if (!result.placements.empty()) {
    EXPECT_GT(result.final_coverage(), 0.5);
  }
}

}  // namespace
}  // namespace adsynth::defense
