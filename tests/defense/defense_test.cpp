// Tests for the §V application algorithms: GoodHound weakest links, the
// Double Oracle game, and the edge-blocking algorithms with their setup
// preconditions.
#include <gtest/gtest.h>

#include "analytics/reachability.hpp"
#include "baselines/adsimulator.hpp"
#include "baselines/university.hpp"
#include "core/generator.hpp"
#include "defense/double_oracle.hpp"
#include "defense/edge_block.hpp"
#include "defense/goodhound.hpp"

namespace adsynth::defense {
namespace {

using adcore::AttackGraph;
using adcore::EdgeKind;
using adcore::NodeIndex;
using adcore::ObjectKind;
namespace node_flag = adcore::node_flag;

/// Funnel with a single cut edge that severs everything:
///   u0,u1 -> c -> a -> DA.
struct Funnel {
  AttackGraph g;
  NodeIndex da, c, a;

  Funnel() {
    da = g.add_named_node(ObjectKind::kGroup, "DOMAIN ADMINS", 0);
    g.set_domain_admins(da);
    c = g.add_named_node(ObjectKind::kComputer, "C", 0);
    a = g.add_named_node(ObjectKind::kUser, "A", 0,
                         node_flag::kAdmin | node_flag::kEnabled);
    for (int i = 0; i < 2; ++i) {
      const NodeIndex u =
          g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
      g.add_edge(u, c, EdgeKind::kExecuteDCOM, true);
    }
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
  }
};

TEST(GoodHound, CutsFunnelWithOneRemoval) {
  Funnel f;
  const GoodHoundResult result = eliminate_attack_paths(f.g);
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.removals(), 1u);
  // It must pick one of the two funnel edges (c->a or a->DA), which carry
  // 100% of the traffic, not a per-user edge.
  const auto& e = f.g.edges()[result.removed[0]];
  EXPECT_TRUE((e.source == f.c && e.target == f.a) ||
              (e.source == f.a && e.target == f.da));
  // Re-check: the removal really eliminates every path.
  std::vector<bool> blocked(f.g.edge_count(), false);
  blocked[result.removed[0]] = true;
  EXPECT_EQ(analytics::users_reaching_da(f.g, &blocked).users_with_path, 0u);
}

TEST(GoodHound, NoPathsMeansNoRemovals) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const GoodHoundResult result = eliminate_attack_paths(g);
  EXPECT_EQ(result.removals(), 0u);
}

TEST(GoodHound, RespectsMaxRemovals) {
  Funnel f;
  GoodHoundOptions options;
  options.max_removals = 0;
  const GoodHoundResult result = eliminate_attack_paths(f.g, options);
  EXPECT_TRUE(result.exhausted);
}

TEST(GoodHound, BatchValidation) {
  Funnel f;
  GoodHoundOptions options;
  options.batch = 0;
  EXPECT_THROW(eliminate_attack_paths(f.g, options), std::invalid_argument);
}

TEST(GoodHound, SecureAdsynthNeedsFewRemovals) {
  // Needs a seed whose secure graph has a small-but-nonzero breach
  // population at 20k (the ≈0.02% target leaves some seeds with zero
  // breached users, where GoodHound rightly removes nothing).
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(20000, 3));
  const GoodHoundResult result = eliminate_attack_paths(ad.graph);
  EXPECT_FALSE(result.exhausted);
  EXPECT_GT(result.removals(), 0u);
  EXPECT_LT(result.removals(), 60u);  // Fig. 11: ≈29 at 100k
}

TEST(DoubleOracle, FunnelNeedsOneCut) {
  Funnel f;
  const DoubleOracleResult result = harden(f.g);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.initial_shortest_length, 3);
  EXPECT_EQ(result.cut_count(), 1u);
}

TEST(DoubleOracle, ParallelRoutesNeedMoreCuts) {
  // Two edge-disjoint length-3 routes require 2 cuts (or 1 on the shared
  // last hop a->DA... make them fully disjoint with two admins).
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  for (int i = 0; i < 2; ++i) {
    const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
    const NodeIndex c = g.add_node(ObjectKind::kComputer);
    const NodeIndex a = g.add_node(ObjectKind::kUser, 0,
                                   node_flag::kAdmin | node_flag::kEnabled);
    g.add_edge(u, c, EdgeKind::kExecuteDCOM);
    g.add_edge(c, a, EdgeKind::kHasSession);
    g.add_edge(a, da, EdgeKind::kMemberOf);
  }
  const DoubleOracleResult result = harden(g);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.cut_count(), 2u);
}

TEST(DoubleOracle, OnlyShortestLengthPathsMatter) {
  // A longer alternative route must NOT force additional cuts.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const NodeIndex c = g.add_node(ObjectKind::kComputer);
  const NodeIndex a = g.add_node(ObjectKind::kUser, 0,
                                 node_flag::kAdmin | node_flag::kEnabled);
  g.add_edge(u, c, EdgeKind::kExecuteDCOM);
  g.add_edge(c, a, EdgeKind::kHasSession);
  g.add_edge(a, da, EdgeKind::kMemberOf);
  // Detour of length 4.
  const NodeIndex d1 = g.add_node(ObjectKind::kComputer);
  const NodeIndex d2 = g.add_node(ObjectKind::kComputer);
  g.add_edge(u, d1, EdgeKind::kExecuteDCOM);
  g.add_edge(d1, d2, EdgeKind::kAdminTo);
  g.add_edge(d2, a, EdgeKind::kHasSession);
  const DoubleOracleResult result = harden(g);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.initial_shortest_length, 3);
  EXPECT_EQ(result.cut_count(), 1u);
  // After the cuts, no length-3 path remains but the detour may survive.
  std::vector<bool> blocked(g.edge_count(), false);
  for (const auto e : result.cuts) blocked[e] = true;
  const auto reach = analytics::users_reaching_da(g, &blocked);
  if (reach.users_with_path > 0) {
    EXPECT_GT(reach.distances[0], 3);
  }
}

TEST(DoubleOracle, NoPathNoGame) {
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  const DoubleOracleResult result = harden(g);
  EXPECT_EQ(result.cut_count(), 0u);
  EXPECT_EQ(result.initial_shortest_length, -1);
}

TEST(DoubleOracle, SecureAdsynthNeedsVeryFewCuts) {
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(20000, 2));
  const DoubleOracleResult result = harden(ad.graph);
  EXPECT_TRUE(result.converged);
  // Fig. 12: the minimum edge removal on ADSynth-secure does not exceed 2.
  EXPECT_LE(result.cut_count(), 3u);
}

TEST(EdgeBlock, RunsOnRandomisedBaselineGraph) {
  baselines::AdSimulatorConfig cfg;
  cfg.target_nodes = 2000;
  const AttackGraph g = baselines::adsimulator_graph(cfg);
  for (const auto algorithm : {EdgeBlockAlgorithm::kIpKernelization,
                               EdgeBlockAlgorithm::kIterativeLp}) {
    const EdgeBlockResult result = block_edges(g, algorithm);
    EXPECT_LE(result.blocked_edges.size(), EdgeBlockOptions{}.budget);
    EXPECT_GE(result.attacker_success, 0.0);
    EXPECT_LE(result.attacker_success, 1.0);
    // Blocking must not help the attacker.
    const auto before = analytics::users_reaching_da(g);
    EXPECT_LE(result.attacker_success, before.fraction + 1e-12);
  }
}

TEST(EdgeBlock, FailsSetupOnRealisticGraphs) {
  // §V-C: "the algorithms report an error in the graph setup" on ADSynth
  // (secure) and the University system.
  const auto ad = core::generate_ad(core::GeneratorConfig::secure(10000, 3));
  EXPECT_THROW(block_edges(ad.graph, EdgeBlockAlgorithm::kIpKernelization),
               GraphSetupError);
  EXPECT_THROW(block_edges(ad.graph, EdgeBlockAlgorithm::kIterativeLp),
               GraphSetupError);

  baselines::UniversityConfig uni;
  uni.target_nodes = 10000;
  const AttackGraph u = baselines::university_graph(uni);
  EXPECT_THROW(block_edges(u, EdgeBlockAlgorithm::kIpKernelization),
               GraphSetupError);
}

TEST(EdgeBlock, SplittingNodeBoundEnforced) {
  baselines::AdSimulatorConfig cfg;
  cfg.target_nodes = 2000;
  const AttackGraph g = baselines::adsimulator_graph(cfg);
  EdgeBlockOptions options;
  options.max_splitting_nodes = 1;
  EXPECT_THROW(block_edges(g, EdgeBlockAlgorithm::kIpKernelization, options),
               GraphSetupError);
}

TEST(EdgeBlock, MissingDaThrowsLogicError) {
  AttackGraph g;
  g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
  EXPECT_THROW(block_edges(g, EdgeBlockAlgorithm::kIpKernelization),
               std::logic_error);
}

TEST(EdgeBlock, IpBlocksTheFunnel) {
  // On a wide funnel the IP finds the one edge disconnecting everyone —
  // but the funnel population must first pass the connectivity precheck.
  AttackGraph g;
  const NodeIndex da = g.add_named_node(ObjectKind::kGroup, "DA");
  g.set_domain_admins(da);
  const NodeIndex c = g.add_node(ObjectKind::kComputer);
  const NodeIndex a = g.add_node(ObjectKind::kUser, 0,
                                 node_flag::kAdmin | node_flag::kEnabled);
  g.add_edge(c, a, EdgeKind::kHasSession);
  g.add_edge(a, da, EdgeKind::kMemberOf);
  for (int i = 0; i < 50; ++i) {
    const NodeIndex u = g.add_node(ObjectKind::kUser, 2, node_flag::kEnabled);
    g.add_edge(u, c, EdgeKind::kExecuteDCOM);
  }
  EdgeBlockOptions options;
  options.budget = 1;
  const EdgeBlockResult result =
      block_edges(g, EdgeBlockAlgorithm::kIpKernelization, options);
  EXPECT_DOUBLE_EQ(result.attacker_success, 0.0);
  EXPECT_EQ(result.blocked_edges.size(), 1u);
}


TEST(GoodHound, BatchRemovalStillEliminatesPaths) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(4000, 6));
  GoodHoundOptions options;
  options.batch = 8;
  const GoodHoundResult result = eliminate_attack_paths(ad.graph, options);
  EXPECT_FALSE(result.exhausted);
  // The batched cut really eliminates everything.
  std::vector<bool> blocked(ad.graph.edge_count(), false);
  for (const auto e : result.removed) blocked[e] = true;
  EXPECT_EQ(analytics::users_reaching_da(ad.graph, &blocked).users_with_path,
            0u);
  // Batching can only overshoot the exact greedy, never undershoot by more
  // than a batch.
  GoodHoundOptions exact;
  const GoodHoundResult one = eliminate_attack_paths(ad.graph, exact);
  EXPECT_GE(result.removals() + options.batch, one.removals());
}

TEST(DoubleOracle, CutsAreValidEdges) {
  const auto ad = core::generate_ad(core::GeneratorConfig::vulnerable(4000, 7));
  const DoubleOracleResult result = harden(ad.graph);
  ASSERT_TRUE(result.converged);
  for (const auto cut : result.cuts) {
    ASSERT_LT(cut, ad.graph.edge_count());
    EXPECT_TRUE(adcore::is_traversable(ad.graph.edges()[cut].kind));
  }
  // After the cuts no path of the original shortest length remains.
  std::vector<bool> blocked(ad.graph.edge_count(), false);
  for (const auto cut : result.cuts) blocked[cut] = true;
  const auto reach = analytics::users_reaching_da(ad.graph, &blocked);
  for (const auto d : reach.distances) {
    if (d != analytics::kUnreachable) {
      EXPECT_GT(d, result.initial_shortest_length);
    }
  }
}

}  // namespace
}  // namespace adsynth::defense
