// Store-backed what-if exploration and the live defense variants.
//
// These tests drive the undo-scope machinery the way the defense loops do:
// speculative tombstones, evaluation over the mutated store, rollback — and
// assert the store comes back bit-identical after every exploration.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "defense/double_oracle.hpp"
#include "defense/edge_block.hpp"
#include "defense/honeypot.hpp"
#include "defense/whatif.hpp"

namespace adsynth::defense {
namespace {

using graphdb::GraphStore;
using graphdb::NodeId;
using graphdb::PropertyValue;
using graphdb::RelId;

/// Tombstone flags + counts: enough to prove an exploration left no trace
/// (live explorations only toggle deleted flags, never append records).
std::string liveness_fingerprint(const GraphStore& s) {
  std::ostringstream out;
  out << s.node_count() << "/" << s.node_capacity() << " " << s.rel_count()
      << "/" << s.rel_capacity() << " d" << s.undo_depth() << " u"
      << s.undo_log_size() << " N:";
  for (NodeId n = 0; n < s.node_capacity(); ++n) out << s.node(n).deleted;
  out << " R:";
  for (RelId r = 0; r < s.rel_capacity(); ++r) out << s.rel(r).deleted;
  return out.str();
}

/// A small AD store with three entry users and a funnel through admin a1:
///
///   u1 -MemberOf-> g1 -AdminTo-> c1 -HasSession-> a1 -MemberOf-> DA
///   u2 ---------AdminTo-------->  c1
///   u3 -GenericAll-> c2 --HasSession--> a1
///   u4 (disabled) -AdminTo-> c1          [not an entry user]
struct Fixture {
  GraphStore store;
  NodeId da, u1, u2, u3, u4, a1, g1, c1, c2;
  RelId a1_to_da;

  Fixture() {
    const auto user = [&](const char* name, bool enabled, bool admin) {
      const NodeId n = store.create_node({"User"});
      store.set_node_property(n, "name", PropertyValue(name));
      store.set_node_property(n, "enabled", PropertyValue(enabled));
      if (admin) store.set_node_property(n, "admin", PropertyValue(true));
      return n;
    };
    da = store.create_node({"Group"});
    store.set_node_property(da, "name", PropertyValue("DOMAIN ADMINS"));
    u1 = user("U1", true, false);
    u2 = user("U2", true, false);
    u3 = user("U3", true, false);
    u4 = user("U4", false, false);
    a1 = user("A1", true, true);
    g1 = store.create_node({"Group"});
    store.set_node_property(g1, "name", PropertyValue("HELPDESK"));
    c1 = store.create_node({"Computer"});
    c2 = store.create_node({"Computer"});

    store.create_relationship(u1, g1, "MemberOf");
    store.create_relationship(g1, c1, "AdminTo");
    store.create_relationship(c1, a1, "HasSession");
    a1_to_da = store.create_relationship(a1, da, "MemberOf");
    store.create_relationship(u2, c1, "AdminTo");
    store.create_relationship(u3, c2, "GenericAll");
    store.create_relationship(c2, a1, "HasSession");
    store.create_relationship(u4, c1, "AdminTo");
  }
};

TEST(WhatIf, ResolvesTargetEntriesAndTraversability) {
  Fixture f;
  WhatIf w(f.store);
  EXPECT_EQ(w.target(), f.da);
  EXPECT_EQ(w.entry_users(), (std::vector<NodeId>{f.u1, f.u2, f.u3}));
  EXPECT_EQ(w.survivors(), 3u);
  const auto path = w.shortest_attack_path();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.size(), 3u);  // u2 or u3 funnel: entry -> host -> a1 -> DA
  EXPECT_EQ(f.store.rel(path.back()).target, f.da);
}

TEST(WhatIf, ThrowsWithoutDomainAdmins) {
  GraphStore store;
  store.create_node({"User"});
  EXPECT_THROW(WhatIf w(store), std::logic_error);
}

TEST(WhatIf, SpeculativeBlockAndRollback) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  WhatIf w(f.store);
  w.speculate();
  w.block_edge(f.a1_to_da);  // severs the funnel for everyone
  EXPECT_EQ(w.survivors(), 0u);
  EXPECT_TRUE(w.shortest_attack_path().empty());
  w.rollback();
  EXPECT_EQ(w.survivors(), 3u);
  EXPECT_EQ(liveness_fingerprint(f.store), before);

  // Honeypot-style node tombstone, nested two deep.
  w.speculate();
  w.block_edge(f.a1_to_da);
  w.speculate();
  w.block_node(f.c1);  // detach-deletes c1 and its edges
  EXPECT_EQ(w.survivors(), 0u);
  w.rollback();
  w.rollback();
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(WhatIf, NonTraversableEdgesIgnored) {
  Fixture f;
  // A CanRDP edge straight to an admin session host must not open a path.
  const NodeId u5 = f.store.create_node({"User"});
  f.store.set_node_property(u5, "name", PropertyValue("U5"));
  f.store.set_node_property(u5, "enabled", PropertyValue(true));
  f.store.create_relationship(u5, f.c1, "CanRDP");
  WhatIf w(f.store);
  EXPECT_EQ(w.entry_users().size(), 4u);
  EXPECT_EQ(w.survivors(), 3u);  // u5 does not reach DA over CanRDP
}

TEST(EdgeBlockLive, CutsTheFunnelAndRestoresStore) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  const LiveEdgeBlockResult r = block_edges_live(f.store, /*budget=*/2);
  EXPECT_EQ(r.entry_users, 3u);
  EXPECT_EQ(r.entry_users_connected, 3u);
  // Blocking the single a1 -> DA membership strands every entry user, and
  // greedy finds it on the first probed path.
  ASSERT_EQ(r.blocked_rels.size(), 1u);
  EXPECT_EQ(r.blocked_rels[0], f.a1_to_da);
  EXPECT_DOUBLE_EQ(r.attacker_success, 0.0);
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(DoubleOracleLive, ConvergesWithOneCutAndRestoresStore) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  const LiveDoubleOracleResult r = harden_live(f.store);
  EXPECT_EQ(r.initial_shortest_length, 3);
  EXPECT_TRUE(r.converged);
  // Every shortest-length path crosses a1 -> DA; one cut ends the game.
  EXPECT_EQ(r.cut_count(), 1u);
  EXPECT_EQ(r.cuts[0], f.a1_to_da);
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(HoneypotLive, PlacesOnTheFunnelAndRestoresStore) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  const LiveHoneypotResult r = place_honeypots_live(f.store, /*count=*/2);
  EXPECT_EQ(r.entry_users_connected, 3u);
  // a1 intercepts every path; after placing it no path survives, so the
  // greedy loop stops early.
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_EQ(r.placements[0], f.a1);
  EXPECT_DOUBLE_EQ(r.final_coverage(), 1.0);
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(SnapshotWhatIf, AgreesWithLiveWhatIf) {
  Fixture f;
  WhatIf live(f.store);
  const SnapshotWhatIf snap(f.store.snapshot());
  EXPECT_EQ(snap.target(), live.target());
  EXPECT_EQ(snap.entry_users(), live.entry_users());

  const WhatIfOverlay empty;
  EXPECT_EQ(snap.survivors(empty), live.survivors());
  EXPECT_EQ(snap.shortest_attack_path(empty), live.shortest_attack_path());

  // Edge block ≡ delete_relationship + rollback.
  WhatIfOverlay cut;
  cut.block_edge(f.a1_to_da);
  live.speculate();
  live.block_edge(f.a1_to_da);
  EXPECT_EQ(snap.survivors(cut), live.survivors());
  EXPECT_EQ(snap.shortest_attack_path(cut), live.shortest_attack_path());
  live.rollback();

  // Node block ≡ DETACH delete_node + rollback.
  WhatIfOverlay pot;
  pot.block_node(f.c1);
  live.speculate();
  live.block_node(f.c1);
  EXPECT_EQ(snap.survivors(pot), live.survivors());
  EXPECT_EQ(snap.shortest_attack_path(pot), live.shortest_attack_path());
  live.rollback();
}

TEST(SnapshotWhatIf, IsolatedFromLaterCommits) {
  Fixture f;
  const SnapshotWhatIf snap(f.store.snapshot());
  const WhatIfOverlay empty;
  ASSERT_EQ(snap.survivors(empty), 3u);

  // Sever the funnel for real: the committed store answers 0, the snapshot
  // keeps answering from its epoch.
  f.store.delete_relationship(f.a1_to_da);
  WhatIf live(f.store);
  EXPECT_EQ(live.survivors(), 0u);
  EXPECT_EQ(snap.survivors(empty), 3u);
  EXPECT_EQ(snap.shortest_attack_path(empty).size(), 3u);
}

TEST(SnapshotWhatIf, ParallelFanOutMatchesSerialProbes) {
  Fixture f;
  WhatIf live(f.store);
  const SnapshotWhatIf snap(f.store.snapshot());
  const std::vector<RelId> path = live.shortest_attack_path();
  ASSERT_FALSE(path.empty());

  const WhatIfOverlay base;
  const std::vector<std::size_t> parallel =
      parallel_edge_survivors(snap, base, path);
  ASSERT_EQ(parallel.size(), path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    live.speculate();
    live.block_edge(path[i]);
    EXPECT_EQ(parallel[i], live.survivors()) << "candidate " << i;
    live.rollback();
  }
}

TEST(SnapshotWhatIf, NullSnapshotThrows) {
  EXPECT_THROW(SnapshotWhatIf w(graphdb::Snapshot{}), std::logic_error);
}

TEST(EdgeBlockSnapshot, BitIdenticalToLiveAndStoreUntouched) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  const LiveEdgeBlockResult live = block_edges_live(f.store, /*budget=*/2);
  const LiveEdgeBlockResult snap = block_edges_snapshot(f.store, /*budget=*/2);
  EXPECT_EQ(snap.blocked_rels, live.blocked_rels);
  EXPECT_DOUBLE_EQ(snap.attacker_success, live.attacker_success);
  EXPECT_EQ(snap.entry_users, live.entry_users);
  EXPECT_EQ(snap.entry_users_connected, live.entry_users_connected);
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(HoneypotSnapshot, BitIdenticalToLiveAndStoreUntouched) {
  Fixture f;
  const std::string before = liveness_fingerprint(f.store);
  const LiveHoneypotResult live = place_honeypots_live(f.store, /*count=*/2);
  const LiveHoneypotResult snap = place_honeypots_snapshot(f.store, 2);
  EXPECT_EQ(snap.placements, live.placements);
  EXPECT_EQ(snap.coverage_after, live.coverage_after);
  EXPECT_EQ(snap.entry_users_connected, live.entry_users_connected);
  EXPECT_EQ(liveness_fingerprint(f.store), before);
}

TEST(HoneypotSnapshot, EmptyStoreThrowsAndDisconnectedIsNoop) {
  GraphStore store;
  EXPECT_THROW(place_honeypots_snapshot(store, 1), std::logic_error);

  const NodeId da = store.create_node({"Group"});
  store.set_node_property(da, "name", PropertyValue("DOMAIN ADMINS"));
  const LiveHoneypotResult r = place_honeypots_snapshot(store, 3);
  EXPECT_EQ(r.entry_users_connected, 0u);
  EXPECT_TRUE(r.placements.empty());
}

TEST(HoneypotLive, EmptyStoreThrowsAndDisconnectedIsNoop) {
  GraphStore store;
  EXPECT_THROW(place_honeypots_live(store, 1), std::logic_error);

  // A DA group with no attack surface: zero connected entries, no rounds.
  const NodeId da = store.create_node({"Group"});
  store.set_node_property(da, "name", PropertyValue("DOMAIN ADMINS"));
  const LiveHoneypotResult r = place_honeypots_live(store, 3);
  EXPECT_EQ(r.entry_users_connected, 0u);
  EXPECT_TRUE(r.placements.empty());
}

}  // namespace
}  // namespace adsynth::defense
