// Kill-point recovery tests: every scenario builds real files in a temp
// directory, corrupts them the way a crash would, and asserts recovery
// lands on the exact last-committed state (by fingerprint) with a store
// that passes the invariant audit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graphdb/cypher.hpp"
#include "graphdb/persist.hpp"
#include "graphdb/wal.hpp"
#include "support/checked_store.hpp"
#include "util/binio.hpp"

namespace adsynth::graphdb {
namespace {

namespace fs = std::filesystem;
using test_support::expect_store_invariants;
using test_support::tag;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = ::testing::TempDir() + "/walrec_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
    fs::create_directories(dir);
  }

  /// One committed transaction touching every WAL op kind.
  static void mutate_txn(GraphStore& store, int round) {
    store.begin_undo_scope();
    const NodeId a = store.create_node({"User"});
    store.set_node_property(a, "name", PropertyValue(tag("user", round)));
    const NodeId b = store.create_node({"Group"});
    store.set_node_property(b, "name", PropertyValue(tag("group", round)));
    const RelId r = store.create_relationship(a, b, "MemberOf", {});
    store.set_node_property(a, "round",
                            PropertyValue(static_cast<std::int64_t>(round)));
    if (round % 2 == 0) {
      store.delete_relationship(r);
      store.delete_node(b);
    }
    store.commit_scope();
  }

  std::string dir;
};

TEST_F(WalRecoveryTest, EmptyDirectoryRecoversToEmptyStore) {
  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore store = dur.recover(&report);
  EXPECT_EQ(store.node_count(), 0u);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_FALSE(report.wal_present);
  expect_store_invariants(store);
}

TEST_F(WalRecoveryTest, WalReplayReproducesFingerprint) {
  std::uint64_t expected = 0;
  {
    persist::Durability dur(dir);
    GraphStore store = dur.recover();
    dur.attach(store);
    store.create_index("User", "name");
    for (int i = 0; i < 8; ++i) mutate_txn(store, i);
    store.create_node({"Orphan"}, {});  // unscoped mutation: its own record
    expected = persist::fingerprint(store);
    EXPECT_GT(dur.wal_records_appended(), 0u);
  }
  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.wal_present);
  EXPECT_FALSE(report.wal_tail_truncated);
  EXPECT_GT(report.wal_records_replayed, 0u);
  EXPECT_EQ(persist::fingerprint(recovered), expected) << report.detail;
  EXPECT_EQ(recovered.find_nodes("User", "name",
                                 PropertyValue(tag("user", 3)))
                .size(),
            1u);
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, AbortedTransactionLeavesNoTrace) {
  std::uint64_t expected = 0;
  {
    persist::Durability dur(dir);
    GraphStore store = dur.recover();
    dur.attach(store);
    mutate_txn(store, 1);
    store.begin_undo_scope();
    const NodeId ghost = store.create_node({"Ghost"});
    store.set_node_property(ghost, "name", PropertyValue("g"));
    store.create_node({"Ghost"}, {});
    store.abort_scope();
    mutate_txn(store, 3);
    expected = persist::fingerprint(store);
  }
  persist::Durability dur(dir);
  const GraphStore recovered = dur.recover();
  EXPECT_EQ(persist::fingerprint(recovered), expected);
  EXPECT_TRUE(
      recovered.find_nodes("Ghost", "name", PropertyValue(std::string("g")))
          .empty());
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, TornTailRecoversToPreviousCommit) {
  std::uint64_t fp_after_txn1 = 0;
  std::uintmax_t committed_bytes = 0;
  std::string wal_path;
  {
    persist::Durability dur(dir);
    wal_path = dur.wal_path();
    GraphStore store = dur.recover();
    dur.attach(store);
    mutate_txn(store, 1);
    dur.sync();
    fp_after_txn1 = persist::fingerprint(store);
    committed_bytes = fs::file_size(wal_path);
    mutate_txn(store, 3);  // the commit the "crash" tears
    dur.sync();
  }
  // Flip a byte inside the second commit's record: a torn write mid-record.
  std::string bytes = read_file(wal_path);
  ASSERT_GT(bytes.size(), committed_bytes);
  bytes[committed_bytes + 8] ^= 0x01;  // first payload byte (sequence)
  write_file(wal_path, bytes);

  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.wal_tail_truncated) << report.detail;
  EXPECT_EQ(report.wal_valid_bytes, committed_bytes);
  EXPECT_EQ(persist::fingerprint(recovered), fp_after_txn1) << report.detail;
  EXPECT_EQ(fs::file_size(wal_path), committed_bytes);
  expect_store_invariants(recovered);

  // The truncated log keeps appending: attach, commit, recover again.
  GraphStore store = dur.recover();
  dur.attach(store);
  mutate_txn(store, 5);
  const std::uint64_t fp_resumed = persist::fingerprint(store);
  dur.detach();
  persist::Durability dur2(dir);
  EXPECT_EQ(persist::fingerprint(dur2.recover()), fp_resumed);
}

TEST_F(WalRecoveryTest, GarbageAppendedToTailIsDropped) {
  std::uint64_t expected = 0;
  std::string wal_path;
  {
    persist::Durability dur(dir);
    wal_path = dur.wal_path();
    GraphStore store = dur.recover();
    dur.attach(store);
    for (int i = 0; i < 4; ++i) mutate_txn(store, i);
    expected = persist::fingerprint(store);
  }
  std::string bytes = read_file(wal_path);
  const std::uintmax_t committed_bytes = bytes.size();
  bytes += std::string("\x13\x37garbage-torn-write", 20);
  write_file(wal_path, bytes);

  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.wal_tail_truncated);
  EXPECT_EQ(report.wal_valid_bytes, committed_bytes);
  EXPECT_EQ(persist::fingerprint(recovered), expected);
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, SequenceGapTruncatesAtTheGap) {
  std::uintmax_t size1 = 0;
  std::uintmax_t size2 = 0;
  std::uint64_t fp_after_txn1 = 0;
  std::string wal_path;
  {
    persist::Durability dur(dir);
    wal_path = dur.wal_path();
    GraphStore store = dur.recover();
    dur.attach(store);
    mutate_txn(store, 1);
    dur.sync();
    size1 = fs::file_size(wal_path);
    fp_after_txn1 = persist::fingerprint(store);
    mutate_txn(store, 3);
    dur.sync();
    size2 = fs::file_size(wal_path);
    mutate_txn(store, 5);
    dur.sync();
  }
  // Splice the middle record out: the tail record's sequence then skips a
  // step, which replay must refuse to jump over.
  const std::string bytes = read_file(wal_path);
  write_file(wal_path, bytes.substr(0, size1) + bytes.substr(size2));

  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.wal_tail_truncated);
  EXPECT_EQ(report.wal_valid_bytes, size1);
  EXPECT_EQ(persist::fingerprint(recovered), fp_after_txn1) << report.detail;
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, CheckpointResetsWalAndRecoverSkipsReplay) {
  std::uint64_t expected = 0;
  {
    persist::Durability dur(dir);
    GraphStore store = dur.recover();
    dur.attach(store);
    for (int i = 0; i < 4; ++i) mutate_txn(store, i);
    dur.checkpoint(store);
    expected = persist::fingerprint(store);
    EXPECT_EQ(dur.checkpoint_id(), 1u);
  }
  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(persist::fingerprint(recovered), expected);
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, CheckpointWhileAttachedKeepsLogging) {
  std::uint64_t expected = 0;
  {
    persist::Durability dur(dir);
    GraphStore store = dur.recover();
    dur.attach(store);
    mutate_txn(store, 1);
    dur.checkpoint(store);  // re-arms the recorder on the fresh WAL
    mutate_txn(store, 3);
    expected = persist::fingerprint(store);
  }
  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_GT(report.wal_records_replayed, 0u);
  EXPECT_EQ(persist::fingerprint(recovered), expected) << report.detail;
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, StaleWalFromCheckpointCrashWindowIsIgnored) {
  std::uint64_t expected = 0;
  std::string stale_wal;
  std::string wal_path;
  {
    persist::Durability dur(dir);
    wal_path = dur.wal_path();
    GraphStore store = dur.recover();
    dur.attach(store);
    mutate_txn(store, 1);
    dur.sync();
    stale_wal = read_file(wal_path);  // carries checkpoint id 0 + txn1
    dur.checkpoint(store);            // snapshot now holds txn1; WAL reset
    expected = persist::fingerprint(store);
  }
  // Crash window: the snapshot renamed into place but the WAL reset never
  // hit the disk — the old log (already folded into the snapshot) remains.
  write_file(wal_path, stale_wal);

  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.wal_stale) << report.detail;
  EXPECT_EQ(report.wal_records_replayed, 0u);
  // The stale log's transactions must not apply twice.
  EXPECT_EQ(persist::fingerprint(recovered), expected) << report.detail;
  expect_store_invariants(recovered);
}

TEST_F(WalRecoveryTest, SessionCheckpointHooks) {
  std::uint64_t expected = 0;
  {
    persist::Durability dur(dir);
    GraphStore store = dur.recover();
    dur.attach(store);
    CypherSession session(store);
    session.set_checkpoint_handler([&] { dur.checkpoint(store); });
    session.set_auto_checkpoint(2);

    session.run("CREATE (n:User {name: 'A'})");
    EXPECT_EQ(session.checkpoints(), 0u);
    session.run("CREATE (n:User {name: 'B'})");
    EXPECT_EQ(session.checkpoints(), 1u);  // fired at commit #2

    session.begin_transaction();
    session.run("CREATE (n:Group {name: 'G'})");
    EXPECT_THROW(session.checkpoint(), std::logic_error);  // txn open
    session.run("CREATE (n:Group {name: 'H'})");
    session.commit();  // commit #3: cadence not due
    EXPECT_EQ(session.checkpoints(), 1u);

    session.checkpoint();  // manual
    EXPECT_EQ(session.checkpoints(), 2u);
    EXPECT_EQ(dur.checkpoint_id(), 2u);
    expected = persist::fingerprint(store);
  }
  persist::Durability dur(dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(persist::fingerprint(recovered), expected) << report.detail;
  expect_store_invariants(recovered);

  CypherSession bare(const_cast<GraphStore&>(recovered));
  EXPECT_THROW(bare.checkpoint(), std::logic_error);  // no handler installed
}

TEST_F(WalRecoveryTest, ReplayRefusesAStoreWithAnArmedSink) {
  persist::Durability dur(dir);
  GraphStore store = dur.recover();
  dur.attach(store);
  mutate_txn(store, 1);
  EXPECT_THROW(wal::replay_wal(dur.wal_path(), store), std::logic_error);
}

}  // namespace
}  // namespace adsynth::graphdb
