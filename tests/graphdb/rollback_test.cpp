// Rollback / atomicity suite for the undo-log transaction machinery.
//
// The core claim under test: a statement that throws inside an explicit
// transaction (or in auto-commit) leaves the store *bit-identical* to the
// last statement boundary — node/relationship records, label buckets,
// adjacency, and property-index answers all restored exactly.  The
// fingerprint below serializes everything observable through the public
// API so "bit-identical" is checked literally, not just via counts.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graphdb/cypher.hpp"
#include "graphdb/store.hpp"
#include "support/checked_store.hpp"
#include "util/rng.hpp"

namespace adsynth::graphdb {
namespace {

const char* const kLabels[] = {"User", "Group", "Computer"};
const char* const kKeys[] = {"name", "enabled", "tier"};

/// Serializes every publicly observable aspect of the store: record
/// contents, tombstone flags, adjacency order, label-bucket order, and
/// index answers for a battery of probe values.
std::string fingerprint(const GraphStore& s) {
  std::ostringstream out;
  out << "n=" << s.node_count() << " r=" << s.rel_count()
      << " nc=" << s.node_capacity() << " rc=" << s.rel_capacity() << "\n";
  for (NodeId id = 0; id < s.node_capacity(); ++id) {
    const NodeRecord& n = s.node(id);
    out << "N" << id << (n.deleted ? "!" : "") << " l:";
    for (const LabelId l : n.labels) out << l << ",";
    out << " p:";
    for (const auto& [k, v] : n.properties) {
      out << k << "=" << v.index_key() << ";";
    }
    out << " o:";
    for (const RelId r : n.out_rels) out << r << ",";
    out << " i:";
    for (const RelId r : n.in_rels) out << r << ",";
    out << "\n";
  }
  for (RelId id = 0; id < s.rel_capacity(); ++id) {
    const RelRecord& r = s.rel(id);
    out << "R" << id << (r.deleted ? "!" : "") << " " << r.source << "->"
        << r.target << " t" << r.type << " p:";
    for (const auto& [k, v] : r.properties) {
      out << k << "=" << v.index_key() << ";";
    }
    out << "\n";
  }
  for (const char* label : kLabels) {
    out << "L" << label << ":";
    for (const NodeId n : s.nodes_with_label(label)) out << n << ",";
    out << "\n";
  }
  // Index answers: probe every (label, key) pair with the values the tests
  // use, so stale/duplicated bucket entries surface as different answers.
  for (const char* label : kLabels) {
    for (const char* key : kKeys) {
      for (const PropertyValue& probe :
           {PropertyValue("A"), PropertyValue("B"), PropertyValue("X"),
            PropertyValue(true), PropertyValue(false), PropertyValue(1),
            PropertyValue(2)}) {
        out << "F" << label << "." << key << "=" << probe.index_key() << ":";
        for (const NodeId n : s.find_nodes(label, key, probe)) out << n << ",";
        out << "\n";
      }
    }
  }
  return out.str();
}

class RollbackTest : public ::testing::Test {
 protected:
  GraphStore store;
  CypherSession session{store};

  // Every rollback test doubles as an invariant-oracle run: whatever the
  // undo log replayed, the store must audit clean (and at rest) afterwards.
  void TearDown() override { test_support::expect_store_invariants(store); }

  void seed_graph() {
    session.run("CREATE INDEX ON :User(name)");
    session.run("CREATE (n:User {name: 'A', enabled: true, tier: 1})");
    session.run("CREATE (n:User {name: 'B', enabled: false, tier: 2})");
    session.run("CREATE (n:Group {name: 'X'})");
    session.run("CREATE (n:Computer {name: 'B'})");
    session.run(
        "MATCH (a:User {name: 'A'}), (b:Group {name: 'X'}) "
        "CREATE (a)-[:MemberOf]->(b)");
    session.run(
        "MATCH (a:Group {name: 'X'}), (b:Computer {name: 'B'}) "
        "CREATE (a)-[:AdminTo {fromgpo: true}]->(b)");
  }
};

TEST_F(RollbackTest, FailedStatementLeavesStoreBitIdentical) {
  seed_graph();
  session.begin_transaction();
  session.run("CREATE (n:User {name: 'C'})");
  session.run("MATCH (n:User {name: 'B'}) SET n.tier = 9");
  const std::string boundary = fingerprint(store);

  // The MATCH side succeeds (both patterns bind) but the statement fails on
  // a later match group — everything it did must unwind to the boundary.
  EXPECT_THROW(
      session.run("MATCH (a:User {name: 'C'}), (b:Group {name: 'MISSING'}) "
                  "CREATE (a)-[:MemberOf]->(b)"),
      CypherError);
  EXPECT_EQ(fingerprint(store), boundary);
  EXPECT_TRUE(session.in_transaction());

  // A DELETE that does partial work before throwing: D1 is unconnected
  // (deleted first, in creation order), D2 is connected (throws).  The
  // tombstone on D1 must unwind with the failed statement.
  session.run("CREATE (n:Domain {name: 'D1'})");
  session.run("CREATE (n:Domain {name: 'D2'})");
  session.run(
      "MATCH (a:Domain {name: 'D2'}), (b:Group {name: 'X'}) "
      "CREATE (a)-[:Contains]->(b)");
  const std::string boundary2 = fingerprint(store);
  EXPECT_THROW(session.run("MATCH (n:Domain) DELETE n"), CypherError);
  EXPECT_EQ(fingerprint(store), boundary2);

  // The transaction itself still commits cleanly afterwards.
  session.commit();
  EXPECT_EQ(fingerprint(store), boundary2);
}

TEST_F(RollbackTest, ExplicitRollbackRestoresSeedState) {
  seed_graph();
  const std::string before = fingerprint(store);
  session.begin_transaction();
  session.run("CREATE (n:User {name: 'C', enabled: true})");
  session.run("MATCH (n:User {name: 'A'}) SET n.enabled = false");
  session.run("MATCH (n:User {name: 'B'}) DETACH DELETE n");
  session.run("MATCH (n:Computer {name: 'B'}) DETACH DELETE n");
  EXPECT_NE(fingerprint(store), before);
  session.rollback();
  EXPECT_EQ(fingerprint(store), before);
}

TEST_F(RollbackTest, NestedScopesRestoreExactly) {
  seed_graph();
  const std::string base = fingerprint(store);
  store.begin_undo_scope();
  const NodeId extra = store.create_node({"User"});
  store.set_node_property(extra, "name", PropertyValue("A"));  // shares bucket
  const std::string mid = fingerprint(store);

  store.begin_undo_scope();
  store.delete_node(extra, /*detach=*/true);
  store.set_node_property(store.nodes_with_label("Group")[0], "tier",
                          PropertyValue(2));
  store.abort_scope();
  EXPECT_EQ(fingerprint(store), mid);

  // Committing an inner scope folds it into the outer one...
  store.begin_undo_scope();
  store.create_relationship(extra, store.nodes_with_label("Group")[0],
                            "MemberOf");
  store.commit_scope();
  // ...so aborting the outer scope unwinds the folded work too.
  store.abort_scope();
  EXPECT_EQ(fingerprint(store), base);
  EXPECT_EQ(store.undo_depth(), 0u);
  EXPECT_EQ(store.undo_log_size(), 0u);
}

// Randomized interleaving: arbitrary mutations under arbitrarily nested
// scopes, with the fingerprint captured at every scope entry and checked on
// every abort.  Catches LIFO-order bugs (bucket tails, adjacency tails,
// index entries) that a hand-written scenario might miss.
TEST_F(RollbackTest, RandomizedApplyRollbackInterleaving) {
  util::Rng rng(0xad51u);
  seed_graph();
  std::vector<std::string> marks;  // fingerprint at each open scope

  const auto random_live_node = [&]() -> NodeId {
    for (int tries = 0; tries < 16; ++tries) {
      const NodeId id = static_cast<NodeId>(
          rng.uniform(0, store.node_capacity() - 1));
      if (!store.node(id).deleted) return id;
    }
    return kNoNode;
  };

  for (int step = 0; step < 600; ++step) {
    const std::uint64_t action = rng.uniform(0, 9);
    switch (action) {
      case 0:  // open a scope (bounded nesting)
        if (marks.size() < 4) {
          marks.push_back(fingerprint(store));
          store.begin_undo_scope();
        }
        break;
      case 1:  // abort: store must return to the mark exactly
        if (!marks.empty()) {
          store.abort_scope();
          EXPECT_EQ(fingerprint(store), marks.back());
          marks.pop_back();
        }
        break;
      case 2:  // commit: folds into parent, parent mark stays valid
        if (!marks.empty()) {
          store.commit_scope();
          marks.pop_back();
        }
        break;
      case 3:
      case 4: {  // create node, sometimes sharing indexed values
        const char* label = kLabels[rng.uniform(0, 2)];
        const NodeId n = store.create_node({label});
        store.set_node_property(
            n, "name", PropertyValue(rng.uniform(0, 1) ? "A" : "B"));
        break;
      }
      case 5: {  // create relationship between live nodes
        const NodeId a = random_live_node();
        const NodeId b = random_live_node();
        if (a != kNoNode && b != kNoNode) {
          store.create_relationship(a, b, "MemberOf");
        }
        break;
      }
      case 6: {  // property churn on an indexed key
        const NodeId n = random_live_node();
        if (n != kNoNode) {
          store.set_node_property(
              n, "tier", PropertyValue(static_cast<std::int64_t>(
                             rng.uniform(1, 2))));
        }
        break;
      }
      case 7: {  // tombstone a relationship
        if (store.rel_capacity() > 0) {
          store.delete_relationship(static_cast<RelId>(
              rng.uniform(0, store.rel_capacity() - 1)));
        }
        break;
      }
      case 8: {  // detach-delete a node
        const NodeId n = random_live_node();
        if (n != kNoNode) store.delete_node(n, /*detach=*/true);
        break;
      }
      case 9: {  // no-op rewrite of the current value (must record nothing)
        const NodeId n = random_live_node();
        if (n != kNoNode) {
          const PropertyValue* cur = store.node_property(n, "name");
          if (cur != nullptr) {
            const std::size_t before = store.undo_log_size();
            store.set_node_property(n, "name", *cur);
            EXPECT_EQ(store.undo_log_size(), before);
          }
        }
        break;
      }
    }
  }
  // Unwind everything still open: each abort must land on its mark.
  while (!marks.empty()) {
    store.abort_scope();
    EXPECT_EQ(fingerprint(store), marks.back());
    marks.pop_back();
  }
  EXPECT_EQ(store.undo_depth(), 0u);
}

// Satellite: the session journal is a bounded ring — memory must stay flat
// over a large import instead of growing a per-statement string forever.
TEST_F(RollbackTest, JournalMemoryFlatOverMillionStatementImport) {
  constexpr std::size_t kStatements = 1'000'000;
  session.run("CREATE (n:U)");
  const std::size_t bytes_at_start = session.journal_bytes();
  for (std::size_t i = 1; i < kStatements; ++i) {
    session.run("CREATE (n:U)");
  }
  EXPECT_EQ(session.statements(), kStatements);
  EXPECT_EQ(session.transactions(), kStatements);
  EXPECT_EQ(session.journal_bytes(), bytes_at_start);  // flat, not O(n)
  EXPECT_LE(session.journal_size(), CypherSession::kJournalCapacity);
  const std::vector<CommitRecord> journal = session.journal();
  EXPECT_EQ(journal.back().sequence, kStatements);
}

}  // namespace
}  // namespace adsynth::graphdb
