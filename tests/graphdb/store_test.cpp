#include "graphdb/store.hpp"

#include <gtest/gtest.h>

#include "support/checked_store.hpp"

namespace adsynth::graphdb {
namespace {

/// Every store test is audited by GraphStore::check_invariants() at
/// teardown (tests/support/checked_store.hpp): passing assertions are not
/// enough, the store must also be internally consistent and at rest.
using GraphStoreTest = test_support::StoreInvariantTest;
using test_support::tag;

TEST(PropertyValue, TypedAccessors) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_TRUE(PropertyValue(true).as_bool());
  EXPECT_EQ(PropertyValue(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(PropertyValue(1.5).as_double(), 1.5);
  EXPECT_DOUBLE_EQ(PropertyValue(3).as_double(), 3.0);
  EXPECT_EQ(PropertyValue("x").as_string(), "x");
  const std::vector<std::string> list{"a", "b"};
  EXPECT_EQ(PropertyValue(list).as_string_list(), list);
  EXPECT_THROW(PropertyValue(1).as_string(), std::runtime_error);
  EXPECT_THROW(PropertyValue("x").as_bool(), std::runtime_error);
}

TEST(PropertyValue, EqualityAndIndexKey) {
  EXPECT_EQ(PropertyValue("a"), PropertyValue("a"));
  EXPECT_FALSE(PropertyValue("a") == PropertyValue("b"));
  EXPECT_FALSE(PropertyValue(1) == PropertyValue(1.0));  // types differ
  EXPECT_EQ(PropertyValue("DA").index_key(), "DA");
  EXPECT_EQ(PropertyValue(true).index_key(), "true");
  EXPECT_EQ(PropertyValue(7).index_key(), "7");
}

TEST(PropertyValue, JsonRoundTrip) {
  const PropertyValue values[] = {
      PropertyValue(), PropertyValue(true), PropertyValue(-3),
      PropertyValue(2.25), PropertyValue("s"),
      PropertyValue(std::vector<std::string>{"p", "q"})};
  for (const auto& v : values) {
    EXPECT_EQ(PropertyValue::from_json(v.to_json()), v);
  }
}

TEST(PropertyList, PutAndGet) {
  PropertyList list;
  put_property(list, 3, PropertyValue("c"));
  put_property(list, 1, PropertyValue("a"));
  put_property(list, 2, PropertyValue("b"));
  put_property(list, 1, PropertyValue("A"));  // replace
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(get_property(list, 1)->as_string(), "A");
  EXPECT_EQ(get_property(list, 2)->as_string(), "b");
  EXPECT_EQ(get_property(list, 9), nullptr);
  // Sorted by key.
  EXPECT_LT(list[0].first, list[1].first);
  EXPECT_LT(list[1].first, list[2].first);
}

TEST_F(GraphStoreTest, CreateAndReadNodes) {
  const NodeId n = store.create_node({"User", "Base"});
  EXPECT_EQ(store.node_count(), 1u);
  const auto user = store.find_label("User");
  ASSERT_TRUE(user.has_value());
  EXPECT_TRUE(store.node_has_label(n, *user));
  EXPECT_EQ(store.nodes_with_label("User"), (std::vector<NodeId>{n}));
  EXPECT_TRUE(store.nodes_with_label("Computer").empty());
}

TEST_F(GraphStoreTest, DuplicateLabelsDeduplicated) {
  const NodeId n = store.create_node({"User", "User"});
  EXPECT_EQ(store.node(n).labels.size(), 1u);
}

TEST_F(GraphStoreTest, RelationshipsUpdateAdjacency) {
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"Group"});
  const RelId r = store.create_relationship(a, b, "MemberOf");
  EXPECT_EQ(store.rel_count(), 1u);
  EXPECT_EQ(store.rel(r).source, a);
  EXPECT_EQ(store.rel(r).target, b);
  EXPECT_EQ(store.rel_type_name(store.rel(r).type), "MemberOf");
  EXPECT_EQ(store.node(a).out_rels, (std::vector<RelId>{r}));
  EXPECT_EQ(store.node(b).in_rels, (std::vector<RelId>{r}));
}

TEST_F(GraphStoreTest, RelationshipEndpointValidation) {
  const NodeId a = store.create_node({"User"});
  EXPECT_THROW(store.create_relationship(a, 99, "MemberOf"),
               std::out_of_range);
  EXPECT_THROW(store.create_relationship(99, a, "MemberOf"),
               std::out_of_range);
}

TEST_F(GraphStoreTest, DeleteRelationshipTombstones) {
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"Group"});
  const RelId r = store.create_relationship(a, b, "MemberOf");
  store.delete_relationship(r);
  EXPECT_TRUE(store.rel(r).deleted);
  EXPECT_EQ(store.rel_count(), 0u);
  EXPECT_EQ(store.rel_capacity(), 1u);
  store.delete_relationship(r);  // idempotent
  EXPECT_EQ(store.rel_count(), 0u);
}

TEST_F(GraphStoreTest, NodeProperties) {
  const NodeId n = store.create_node({"User"});
  store.set_node_property(n, "name", PropertyValue("ALICE"));
  store.set_node_property(n, "enabled", PropertyValue(true));
  ASSERT_NE(store.node_property(n, "name"), nullptr);
  EXPECT_EQ(store.node_property(n, "name")->as_string(), "ALICE");
  EXPECT_EQ(store.node_property(n, "missing"), nullptr);
  store.set_node_property(n, "name", PropertyValue("BOB"));
  EXPECT_EQ(store.node_property(n, "name")->as_string(), "BOB");
}

TEST_F(GraphStoreTest, FindNodesWithoutIndexScansLabel) {
  for (int i = 0; i < 10; ++i) {
    PropertyList props;
    put_property(props, store.intern_key("name"),
                 PropertyValue(tag("U", i)));
    store.create_node_interned({store.intern_label("User")}, std::move(props));
  }
  const auto found = store.find_nodes("User", "name", PropertyValue("U7"));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 7u);
  EXPECT_TRUE(store.find_nodes("User", "name", PropertyValue("nope")).empty());
  EXPECT_TRUE(store.find_nodes("Ghost", "name", PropertyValue("U7")).empty());
}

TEST_F(GraphStoreTest, IndexAcceleratedLookupStaysCorrectAfterUpdates) {
  store.create_index("User", "name");
  const NodeId a = store.create_node({"User"});
  store.set_node_property(a, "name", PropertyValue("X"));
  EXPECT_EQ(store.find_nodes("User", "name", PropertyValue("X")),
            (std::vector<NodeId>{a}));
  // Change the value: old bucket entry must not produce a stale hit.
  store.set_node_property(a, "name", PropertyValue("Y"));
  EXPECT_TRUE(store.find_nodes("User", "name", PropertyValue("X")).empty());
  EXPECT_EQ(store.find_nodes("User", "name", PropertyValue("Y")),
            (std::vector<NodeId>{a}));
}

TEST_F(GraphStoreTest, IndexBackfillsExistingNodes) {
  PropertyList props;
  put_property(props, store.intern_key("name"), PropertyValue("EARLY"));
  const NodeId n = store.create_node_interned({store.intern_label("User")},
                                              std::move(props));
  store.create_index("User", "name");
  EXPECT_EQ(store.find_nodes("User", "name", PropertyValue("EARLY")),
            (std::vector<NodeId>{n}));
}

TEST_F(GraphStoreTest, InternersStable) {
  const LabelId l1 = store.intern_label("User");
  const LabelId l2 = store.intern_label("User");
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(store.label_name(l1), "User");
  const PropertyKeyId k = store.intern_key("name");
  EXPECT_EQ(store.key_name(k), "name");
  const RelTypeId t = store.intern_rel_type("AdminTo");
  EXPECT_EQ(store.rel_type_name(t), "AdminTo");
  EXPECT_FALSE(store.find_label("Nope").has_value());
}

TEST_F(GraphStoreTest, ApproximateBytesGrowsWithContent) {
  const std::size_t empty = store.approximate_bytes();
  for (int i = 0; i < 1000; ++i) {
    PropertyList props;
    put_property(props, store.intern_key("name"),
                 PropertyValue(tag("NODE", i)));
    store.create_node_interned({store.intern_label("User")}, std::move(props));
  }
  EXPECT_GT(store.approximate_bytes(), empty);
}

TEST_F(GraphStoreTest, DeleteNodeTombstones) {
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"User"});
  store.delete_node(a);
  EXPECT_TRUE(store.node(a).deleted);
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(store.nodes_with_label("User"), std::vector<NodeId>{b});
  store.delete_node(a);  // idempotent
  EXPECT_EQ(store.node_count(), 1u);
}

TEST_F(GraphStoreTest, DeleteConnectedNodeRequiresDetach) {
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"Group"});
  store.create_relationship(a, b, "MemberOf");
  EXPECT_THROW(store.delete_node(a), std::logic_error);
  EXPECT_FALSE(store.node(a).deleted);
  store.delete_node(a, /*detach=*/true);
  EXPECT_TRUE(store.node(a).deleted);
  EXPECT_EQ(store.rel_count(), 0u);
  // Once the incident relationship is tombstoned, plain delete suffices.
  store.delete_node(b);
  EXPECT_EQ(store.node_count(), 0u);
}

TEST_F(GraphStoreTest, DetachDeleteHandlesSelfLoop) {
  const NodeId a = store.create_node({"Computer"});
  store.create_relationship(a, a, "AdminTo");
  store.delete_node(a, /*detach=*/true);
  EXPECT_EQ(store.node_count(), 0u);
  EXPECT_EQ(store.rel_count(), 0u);
}

TEST_F(GraphStoreTest, RelationshipsRejectTombstonedEndpoints) {
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"Group"});
  store.delete_node(b);
  // The resurrection bug: edges must not attach to deleted nodes.
  EXPECT_THROW(store.create_relationship(a, b, "MemberOf"),
               std::invalid_argument);
  EXPECT_THROW(store.create_relationship(b, a, "MemberOf"),
               std::invalid_argument);
  EXPECT_THROW(store.set_node_property(b, "name", PropertyValue("X")),
               std::invalid_argument);
  EXPECT_EQ(store.rel_count(), 0u);
}

TEST_F(GraphStoreTest, DeletedNodesInvisibleToFindNodes) {
  store.create_index("User", "name");
  const NodeId a = store.create_node({"User"});
  store.set_node_property(a, "name", PropertyValue("A"));
  store.delete_node(a);
  EXPECT_TRUE(store.find_nodes("User", "name", PropertyValue("A")).empty());
  // Back-fill after deletion skips tombstones too.
  store.create_index("User", "enabled");
  EXPECT_TRUE(store.find_nodes("User", "enabled", PropertyValue(true)).empty());
}

TEST_F(GraphStoreTest, CreateNodeAtomicOnUnknownInternedLabel) {
  const LabelId known = store.intern_label("User");
  EXPECT_THROW(store.create_node_interned({known, known + 7}),
               std::out_of_range);
  // The failed create must not leave a half-registered node behind.
  EXPECT_EQ(store.node_count(), 0u);
  EXPECT_TRUE(store.nodes_with_label("User").empty());
}

TEST_F(GraphStoreTest, IndexStaleAccountingAndCompaction) {
  store.create_index("User", "name");
  const NodeId n = store.create_node({"User"});
  store.set_node_property(n, "name", PropertyValue("V0"));
  auto stats = store.index_stats("User", "name");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->entries, 1u);
  EXPECT_EQ(stats->stale, 0u);

  // Each overwrite strands the previous bucket entry.
  for (int i = 1; i <= 10; ++i) {
    store.set_node_property(n, "name",
                            PropertyValue(tag("V", i)));
  }
  stats = store.index_stats("User", "name");
  EXPECT_EQ(stats->stale, 10u);
  // Setting the same value again is a no-op: no new stale entry.
  store.set_node_property(n, "name", PropertyValue("V10"));
  EXPECT_EQ(store.index_stats("User", "name")->stale, 10u);

  // Lookups stay exact despite the garbage.
  EXPECT_TRUE(store.find_nodes("User", "name", PropertyValue("V3")).empty());
  EXPECT_EQ(store.find_nodes("User", "name", PropertyValue("V10")),
            std::vector<NodeId>{n});

  // Push past the compaction threshold: entries >= 64 and stale majority.
  for (int i = 0; i < 200; ++i) {
    store.set_node_property(n, "name",
                            PropertyValue(tag("W", i)));
  }
  stats = store.index_stats("User", "name");
  // Compaction fired at least once: far fewer entries than writes.
  EXPECT_LT(stats->entries + stats->stale, 100u);
  EXPECT_EQ(store.find_nodes("User", "name", PropertyValue("W199")),
            std::vector<NodeId>{n});
}

TEST_F(GraphStoreTest, CompactionDeferredWhileRecording) {
  store.create_index("User", "name");
  const NodeId n = store.create_node({"User"});
  store.begin_undo_scope();
  for (int i = 0; i < 500; ++i) {
    store.set_node_property(n, "name",
                            PropertyValue(tag("V", i)));
  }
  // No compaction inside the scope: all stale entries still accounted.
  EXPECT_GE(store.index_stats("User", "name")->stale, 400u);
  store.abort_scope();
  EXPECT_EQ(store.node_property(n, "name"), nullptr);
  EXPECT_EQ(store.index_stats("User", "name")->entries, 0u);
}

TEST_F(GraphStoreTest, CreateIndexForbiddenInsideUndoScope) {
  store.begin_undo_scope();
  EXPECT_THROW(store.create_index("User", "name"), std::logic_error);
  store.abort_scope();
  store.create_index("User", "name");  // fine outside
}

}  // namespace
}  // namespace adsynth::graphdb
