// Corruption-injection suite for GraphStore::check_invariants().
//
// The checker is the dynamic half of the static-analysis layer: the lint
// and annotation lanes prove lock/determinism discipline at compile time,
// this oracle proves store consistency at run time.  A checker that never
// fires is worthless, so every invariant class gets a test that reaches
// through the StoreTestAccess friend hook, plants exactly one targeted
// inconsistency, and asserts the audit names it.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"
#include "support/checked_store.hpp"

namespace adsynth::graphdb {

/// Test-only corruption hook (friend of GraphStore).  Each mutator breaks
/// one invariant the production code maintains; none of these states is
/// reachable through the public API.
struct StoreTestAccess {
  static void drop_out_adjacency_entry(GraphStore& s, NodeId n, RelId r) {
    auto& out = s.nodes_[n].out_rels;
    out.erase(std::remove(out.begin(), out.end(), r), out.end());
  }
  static void duplicate_in_adjacency_entry(GraphStore& s, NodeId n, RelId r) {
    s.nodes_[n].in_rels.push_back(r);
  }
  static void drop_label_bucket_entry(GraphStore& s, LabelId l, NodeId n) {
    auto& bucket = s.label_buckets_[l];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), n), bucket.end());
  }
  static void push_bogus_index_row(GraphStore& s, std::size_t index,
                                   const std::string& value, NodeId n) {
    s.indexes_[index].buckets[value].push_back(n);
    // Deliberately do NOT bump `entries`: one injection, two findings
    // (accounting drift and a stale entry the counter undercounts).
  }
  static void tombstone_node_without_detach(GraphStore& s, NodeId n) {
    s.nodes_[n].deleted = true;
    ++s.deleted_nodes_;
  }
  static void corrupt_deleted_rel_count(GraphStore& s, std::size_t count) {
    s.deleted_rels_ = count;
  }

  // --- version-chain / snapshot-registry corruption ----------------------
  static void stamp_node_version(GraphStore& s, NodeId n, std::uint64_t e) {
    s.nodes_[n].mutated_epoch = e;
  }
  static std::uint64_t pending_epoch(const GraphStore& s) {
    return s.pending_epoch();
  }
  static void plant_zombie_registry_epoch(GraphStore& s, std::uint64_t e) {
    util::MutexLock lock(s.snap_.control->mutex);
    s.snap_.control->live[e];  // registered epoch with zero live views
  }
  static void drop_writer_tail(GraphStore& s) { s.snap_.tail.reset(); }
};

namespace {

using test_support::expect_store_invariants;
using test_support::tag;

class InvariantInjectionTest : public ::testing::Test {
 protected:
  GraphStore store;
  NodeId user = kNoNode;
  NodeId group = kNoNode;
  RelId member_of = kNoRel;

  void SetUp() override {
    store.create_index("User", "name");
    user = store.create_node({"User"}, {{store.intern_key("name"),
                                         PropertyValue("alice")}});
    group = store.create_node({"Group"}, {{store.intern_key("name"),
                                           PropertyValue("admins")}});
    member_of = store.create_relationship(user, group, "MemberOf");
    ASSERT_TRUE(store.check_invariants().ok());
  }

  /// True when some violation message contains `needle`.
  bool violation_mentions(const std::string& needle,
                          bool require_at_rest = true) {
    const auto report = store.check_invariants(require_at_rest);
    for (const auto& v : report.violations) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

TEST_F(InvariantInjectionTest, CleanStorePassesAudit) {
  const auto report = store.check_invariants();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.violations.empty());
}

TEST_F(InvariantInjectionTest, AsymmetricAdjacencyDetected) {
  StoreTestAccess::drop_out_adjacency_entry(store, user, member_of);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("appears 0x in source"));
}

TEST_F(InvariantInjectionTest, DuplicateAdjacencyEntryDetected) {
  StoreTestAccess::duplicate_in_adjacency_entry(store, group, member_of);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("appears 2x in target"));
}

TEST_F(InvariantInjectionTest, MissingLabelBucketEntryDetected) {
  const LabelId user_label = *store.find_label("User");
  StoreTestAccess::drop_label_bucket_entry(store, user_label, user);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("appears 0x"));
}

TEST_F(InvariantInjectionTest, StaleIndexRowDetected) {
  // A fabricated row claims node `group` has User.name == "mallory".
  StoreTestAccess::push_bogus_index_row(store, 0, "mallory", group);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("buckets hold"));   // entries drift
  EXPECT_TRUE(violation_mentions("undercounts"));    // stale undercount
}

TEST_F(InvariantInjectionTest, DanglingTombstoneEdgeDetected) {
  // Tombstone the user without detaching: MemberOf stays live but its
  // source is dead — exactly what delete_node's detach contract prevents.
  StoreTestAccess::tombstone_node_without_detach(store, user);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("live relationship touches tombstoned"));
}

TEST_F(InvariantInjectionTest, TombstoneAccountingDriftDetected) {
  StoreTestAccess::corrupt_deleted_rel_count(store, 7);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("deleted_rels_=7"));
}

TEST_F(InvariantInjectionTest, OpenScopeFailsAtRestAudit) {
  store.begin_undo_scope();
  store.set_node_property(user, "name", PropertyValue("bob"));
  EXPECT_TRUE(violation_mentions("undo scope(s) still open"));
  EXPECT_TRUE(violation_mentions("undo log holds"));
  // The same state is legitimate mid-transaction.
  EXPECT_TRUE(store.check_invariants(/*require_at_rest=*/false).ok());
  store.abort_scope();
  EXPECT_TRUE(store.check_invariants().ok());
}

// The audit must stay green across the operations the undo log is allowed
// to leave traces of: rollback, detach-delete, and index compaction.
TEST_F(InvariantInjectionTest, AuditGreenAfterRollbackAndDetachDelete) {
  store.begin_undo_scope();
  const NodeId temp = store.create_node({"User"});
  store.create_relationship(temp, group, "MemberOf");
  store.set_node_property(user, "name", PropertyValue("carol"));
  EXPECT_TRUE(store.check_invariants(/*require_at_rest=*/false).ok());
  store.abort_scope();
  expect_store_invariants(store);

  store.delete_node(user, /*detach=*/true);
  expect_store_invariants(store);
}

TEST_F(InvariantInjectionTest, FutureVersionStampDetected) {
  // No snapshot machinery needed: stamps beyond the pending epoch are
  // corrupt even before anything is published.
  StoreTestAccess::stamp_node_version(
      store, user, StoreTestAccess::pending_epoch(store) + 5);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("beyond pending epoch"));
}

TEST_F(InvariantInjectionTest, DanglingEpochStampDetected) {
  // A record stamped after the root epoch with no overlay entry: readers
  // of the published view would serve the root-era record for a mutated
  // id.  The pending epoch is the highest legal stamp, so use it.
  const Snapshot snap = store.snapshot();
  StoreTestAccess::stamp_node_version(store, user,
                                      StoreTestAccess::pending_epoch(store));
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("missing from the overlay"));
}

TEST_F(InvariantInjectionTest, OverlayDivergenceDetected) {
  // Publish a delta so `user` has an overlay copy, then rewrite the
  // committed record's stamp underneath it.
  store.snapshot();
  store.begin_undo_scope();
  store.set_node_property(user, "name", PropertyValue("dave"));
  store.commit_scope();
  ASSERT_TRUE(store.check_invariants().ok());
  StoreTestAccess::stamp_node_version(store, user, 0);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("diverges from the committed record"));
}

TEST_F(InvariantInjectionTest, ZombieRegistryEpochDetected) {
  const Snapshot snap = store.snapshot();
  // A registry entry whose reader count hit zero without being erased is a
  // leaked (unreclaimed) retired version.  Epoch 0 predates every real
  // publish, so the planted entry collides with nothing.
  StoreTestAccess::plant_zombie_registry_epoch(store, 0);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("retained with zero live views"));
}

TEST_F(InvariantInjectionTest, PublishedTailDivergenceDetected) {
  const Snapshot snap = store.snapshot();
  StoreTestAccess::drop_writer_tail(store);
  EXPECT_FALSE(store.check_invariants().ok());
  EXPECT_TRUE(violation_mentions("diverges from the writer tail"));
}

TEST_F(InvariantInjectionTest, AuditGreenAcrossSnapshotLifecycle) {
  Snapshot s1 = store.snapshot();
  store.begin_undo_scope();
  store.set_node_property(user, "name", PropertyValue("erin"));
  store.commit_scope();
  Snapshot s2 = store.snapshot();
  expect_store_invariants(store);

  // Mid-batch the live records legitimately run ahead of the published
  // view; only the at-rest audit must be strict about it.
  store.begin_undo_scope();
  store.set_node_property(user, "name", PropertyValue("frank"));
  EXPECT_TRUE(store.check_invariants(/*require_at_rest=*/false).ok());
  store.abort_scope();
  expect_store_invariants(store);

  // Reclamation leaves no residue: dropping every handle (the published
  // tail keeps the newest epoch alive) and invalidating the tail both
  // audit green.
  s1.reset();
  s2.reset();
  expect_store_invariants(store);
  store.set_node_property(user, "name", PropertyValue("grace"));  // unscoped
  EXPECT_EQ(store.snapshot_stats().live_views, 0u);
  expect_store_invariants(store);
}

TEST_F(InvariantInjectionTest, AuditGreenAfterCompaction) {
  // Force compaction: grow past kCompactMinEntries, then turn a majority
  // of the entries stale by rewriting the indexed property.
  for (int i = 0; i < 80; ++i) {
    store.create_node({"User"}, {{store.intern_key("name"),
                                  PropertyValue(tag("u", i))}});
  }
  for (const NodeId n : store.nodes_with_label("User")) {
    store.set_node_property(n, "name", PropertyValue("renamed"));
  }
  expect_store_invariants(store);
}

}  // namespace
}  // namespace adsynth::graphdb
