#include "graphdb/cypher.hpp"

#include <gtest/gtest.h>

namespace adsynth::graphdb {
namespace {

class CypherTest : public ::testing::Test {
 protected:
  GraphStore store;
  CypherSession session{store};
};

TEST_F(CypherTest, CreateNodeWithProperties) {
  const QueryResult r = session.run(
      "CREATE (n:User {name: 'ALICE', enabled: true, logons: 3, "
      "score: 1.5, spn: ['a', 'b'], note: null})");
  EXPECT_EQ(r.nodes_created, 1u);
  ASSERT_EQ(r.nodes.size(), 1u);
  const NodeId n = r.nodes[0];
  EXPECT_EQ(store.node_property(n, "name")->as_string(), "ALICE");
  EXPECT_TRUE(store.node_property(n, "enabled")->as_bool());
  EXPECT_EQ(store.node_property(n, "logons")->as_int(), 3);
  EXPECT_DOUBLE_EQ(store.node_property(n, "score")->as_double(), 1.5);
  EXPECT_EQ(store.node_property(n, "spn")->as_string_list().size(), 2u);
  EXPECT_TRUE(store.node_property(n, "note")->is_null());
}

TEST_F(CypherTest, CreateMultipleLabels) {
  session.run("CREATE (n:Base:User {name: 'X'})");
  EXPECT_EQ(store.nodes_with_label("Base").size(), 1u);
  EXPECT_EQ(store.nodes_with_label("User").size(), 1u);
}

TEST_F(CypherTest, MatchCreateRelationship) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:Group {name: 'G'})");
  const QueryResult r = session.run(
      "MATCH (a:User {name: 'A'}), (b:Group {name: 'G'}) "
      "CREATE (a)-[:MemberOf]->(b)");
  EXPECT_EQ(r.rels_created, 1u);
  const RelRecord& rel = store.rel(r.rels[0]);
  EXPECT_EQ(store.rel_type_name(rel.type), "MemberOf");
  EXPECT_EQ(store.node_property(rel.source, "name")->as_string(), "A");
  EXPECT_EQ(store.node_property(rel.target, "name")->as_string(), "G");
}

TEST_F(CypherTest, RelationshipWithProperties) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:Computer {name: 'C'})");
  const QueryResult r = session.run(
      "MATCH (a:User {name: 'A'}), (b:Computer {name: 'C'}) "
      "CREATE (a)-[:AdminTo {fromgpo: true}]->(b)");
  const auto key = store.find_key("fromgpo");
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(get_property(store.rel(r.rels[0]).properties, *key)->as_bool());
}

TEST_F(CypherTest, MergeNodeIsIdempotent) {
  const QueryResult first = session.run("MERGE (n:User {name: 'A'})");
  const QueryResult second = session.run("MERGE (n:User {name: 'A'})");
  EXPECT_EQ(first.nodes_created, 1u);
  EXPECT_EQ(second.nodes_created, 0u);
  EXPECT_EQ(first.nodes, second.nodes);
}

TEST_F(CypherTest, MergeRelationshipIsIdempotent) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:Group {name: 'G'})");
  const std::string stmt =
      "MATCH (a:User {name: 'A'}), (b:Group {name: 'G'}) "
      "MERGE (a)-[:MemberOf]->(b)";
  EXPECT_EQ(session.run(stmt).rels_created, 1u);
  EXPECT_EQ(session.run(stmt).rels_created, 0u);
  EXPECT_EQ(store.rel_count(), 1u);
}

TEST_F(CypherTest, ReturnCountAndNodes) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:User {name: 'B'})");
  session.run("CREATE (n:Group {name: 'G'})");
  EXPECT_EQ(session.run("MATCH (n:User) RETURN count(n)").count, 2);
  EXPECT_EQ(session.run("MATCH (n:Group) RETURN n").nodes.size(), 1u);
  EXPECT_EQ(session.run("MATCH (n:User {name: 'A'}) RETURN count(n)").count,
            1);
}

TEST_F(CypherTest, SetUpdatesMatchedNodes) {
  session.run("CREATE (n:User {name: 'A', enabled: false})");
  const QueryResult r =
      session.run("MATCH (n:User {name: 'A'}) SET n.enabled = true");
  EXPECT_EQ(r.properties_set, 1u);
  EXPECT_TRUE(store.node_property(r.nodes[0], "enabled")->as_bool());
}

TEST_F(CypherTest, CreateIndexSpeedsLookupsTransparently) {
  session.run("CREATE INDEX ON :User(name)");
  session.run("CREATE (n:User {name: 'A'})");
  EXPECT_EQ(session.run("MATCH (n:User {name: 'A'}) RETURN count(n)").count,
            1);
}

TEST_F(CypherTest, MatchNoResultThrowsForRelationshipCreation) {
  session.run("CREATE (n:User {name: 'A'})");
  EXPECT_THROW(session.run("MATCH (a:User {name: 'A'}), (b:Group {name: "
                           "'MISSING'}) CREATE (a)-[:MemberOf]->(b)"),
               CypherError);
}

TEST_F(CypherTest, SyntaxErrors) {
  EXPECT_THROW(session.run(""), CypherError);
  EXPECT_THROW(session.run("DROP TABLE users"), CypherError);
  EXPECT_THROW(session.run("CREATE (n:User {name: })"), CypherError);
  EXPECT_THROW(session.run("CREATE (n:User {name: 'x'"), CypherError);
  EXPECT_THROW(session.run("MATCH (n) RETURN n"), CypherError);  // no label
  EXPECT_THROW(session.run("CREATE (n:User {name: 'unterminated})"),
               CypherError);
}

TEST_F(CypherTest, EscapedQuotesInStrings) {
  session.run("CREATE (n:User {name: 'O\\'BRIEN'})");
  EXPECT_EQ(
      session.run("MATCH (n:User {name: 'O\\'BRIEN'}) RETURN count(n)").count,
      1);
}

TEST_F(CypherTest, DoubleQuotedStrings) {
  session.run("CREATE (n:User {name: \"QUOTED\"})");
  EXPECT_EQ(store.node_count(), 1u);
}

TEST_F(CypherTest, TransactionsCountedAndJournaled) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:User {name: 'B'})");
  EXPECT_EQ(session.transactions(), 2u);
  // Two commit records in the journal, in order, one statement each.
  const std::vector<CommitRecord> journal = session.journal();
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal[0].sequence, 1u);
  EXPECT_EQ(journal[1].sequence, 2u);
  for (const CommitRecord& rec : journal) {
    EXPECT_EQ(rec.statements, 1u);
    EXPECT_EQ(rec.nodes_created, 1u);
    EXPECT_EQ(rec.rels_created, 0u);
  }
}

TEST_F(CypherTest, TrailingSemicolonAccepted) {
  EXPECT_EQ(session.run("CREATE (n:User {name: 'A'});").nodes_created, 1u);
}

TEST_F(CypherTest, NegativeAndFloatLiterals) {
  session.run("CREATE (n:User {name: 'N', delta: -12, ratio: 0.25})");
  const NodeId n = store.nodes_with_label("User")[0];
  EXPECT_EQ(store.node_property(n, "delta")->as_int(), -12);
  EXPECT_DOUBLE_EQ(store.node_property(n, "ratio")->as_double(), 0.25);
}

TEST_F(CypherTest, MultiplePropertyMatch) {
  session.run("CREATE (n:User {name: 'A', enabled: true})");
  session.run("CREATE (n:User {name: 'A', enabled: false})");
  EXPECT_EQ(session
                .run("MATCH (n:User {name: 'A', enabled: false}) "
                     "RETURN count(n)")
                .count,
            1);
}


TEST_F(CypherTest, ExplicitTransactionBatchesCommits) {
  session.begin_transaction();
  EXPECT_TRUE(session.in_transaction());
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:User {name: 'B'})");
  session.run("CREATE (n:User {name: 'C'})");
  EXPECT_EQ(session.transactions(), 0u);  // nothing committed yet
  EXPECT_EQ(session.statements(), 3u);
  session.commit();
  EXPECT_FALSE(session.in_transaction());
  EXPECT_EQ(session.transactions(), 1u);
  EXPECT_EQ(store.node_count(), 3u);
  // The single commit record carries the batch totals.
  const std::vector<CommitRecord> journal = session.journal();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].statements, 3u);
  EXPECT_EQ(journal[0].nodes_created, 3u);
}

TEST_F(CypherTest, TransactionMisuseThrows) {
  session.begin_transaction();
  EXPECT_THROW(session.begin_transaction(), std::logic_error);
  session.commit();
  EXPECT_THROW(session.commit(), std::logic_error);
}

TEST_F(CypherTest, AutoCommitResumesAfterExplicitTransaction) {
  session.begin_transaction();
  session.run("CREATE (n:User {name: 'A'})");
  session.commit();
  session.run("CREATE (n:User {name: 'B'})");
  EXPECT_EQ(session.transactions(), 2u);
}

TEST_F(CypherTest, RollbackDiscardsTransaction) {
  session.run("CREATE (n:User {name: 'KEEP'})");
  session.begin_transaction();
  session.run("CREATE (n:User {name: 'GONE'})");
  session.run("MATCH (n:User {name: 'KEEP'}) SET n.enabled = true");
  session.rollback();
  EXPECT_FALSE(session.in_transaction());
  EXPECT_EQ(session.rollbacks(), 1u);
  EXPECT_EQ(session.transactions(), 1u);  // only the auto-commit
  EXPECT_EQ(store.node_count(), 1u);
  const NodeId keep = store.nodes_with_label("User")[0];
  EXPECT_EQ(store.node_property(keep, "enabled"), nullptr);
  // A rolled-back transaction leaves no journal record.
  EXPECT_EQ(session.journal().size(), 1u);
}

TEST_F(CypherTest, RollbackOutsideTransactionThrows) {
  EXPECT_THROW(session.rollback(), std::logic_error);
}

TEST_F(CypherTest, FailedStatementRollsBackToStatementBoundary) {
  session.begin_transaction();
  session.run("CREATE (n:User {name: 'A'})");
  // The statement throws after the session parsed it; the savepoint must
  // discard any partial work without killing the transaction's first write.
  EXPECT_THROW(session.run("MATCH (a:User {name: 'A'}), (b:Group {name: "
                           "'MISSING'}) CREATE (a)-[:MemberOf]->(b)"),
               CypherError);
  EXPECT_TRUE(session.in_transaction());
  EXPECT_EQ(session.statement_rollbacks(), 1u);
  session.commit();
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(store.rel_count(), 0u);
  ASSERT_EQ(session.journal().size(), 1u);
  EXPECT_EQ(session.journal()[0].statements, 1u);  // failed one not counted
}

TEST_F(CypherTest, FailedAutoCommitStatementIsAtomic) {
  session.run("CREATE (n:User {name: 'A'})");
  EXPECT_THROW(session.run("MATCH (a:User {name: 'A'}), (b:Group {name: "
                           "'MISSING'}) CREATE (a)-[:MemberOf]->(b)"),
               CypherError);
  EXPECT_EQ(session.statement_rollbacks(), 1u);
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(session.transactions(), 1u);
}

TEST_F(CypherTest, MatchDeleteRemovesNodes) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:User {name: 'B'})");
  const QueryResult r = session.run("MATCH (n:User {name: 'A'}) DELETE n");
  EXPECT_EQ(r.nodes_deleted, 1u);
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(session.run("MATCH (n:User {name: 'A'}) RETURN count(n)").count,
            0);
}

TEST_F(CypherTest, DeleteConnectedNodeNeedsDetach) {
  session.run("CREATE (n:User {name: 'A'})");
  session.run("CREATE (n:Group {name: 'G'})");
  session.run(
      "MATCH (a:User {name: 'A'}), (b:Group {name: 'G'}) "
      "CREATE (a)-[:MemberOf]->(b)");
  EXPECT_THROW(session.run("MATCH (n:User {name: 'A'}) DELETE n"),
               CypherError);
  EXPECT_EQ(store.node_count(), 2u);  // the failed DELETE changed nothing
  const QueryResult r =
      session.run("MATCH (n:User {name: 'A'}) DETACH DELETE n");
  EXPECT_EQ(r.nodes_deleted, 1u);
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(store.rel_count(), 0u);
}

TEST_F(CypherTest, DeleteInsideTransactionRollsBack) {
  session.run("CREATE (n:User {name: 'A'})");
  session.begin_transaction();
  session.run("MATCH (n:User {name: 'A'}) DETACH DELETE n");
  EXPECT_EQ(store.node_count(), 0u);
  session.rollback();
  EXPECT_EQ(store.node_count(), 1u);
  EXPECT_EQ(session.run("MATCH (n:User {name: 'A'}) RETURN count(n)").count,
            1);
}

TEST_F(CypherTest, CreateIndexRefusedInsideTransaction) {
  session.begin_transaction();
  EXPECT_THROW(session.run("CREATE INDEX ON :User(name)"), CypherError);
  session.rollback();
  // Allowed (and journaled) as an auto-commit statement.
  session.run("CREATE INDEX ON :User(name)");
  EXPECT_EQ(session.transactions(), 1u);
}

TEST_F(CypherTest, JournalIsBoundedRing) {
  for (std::size_t i = 0; i < CypherSession::kJournalCapacity + 10; ++i) {
    session.run("CREATE (n:User {name: 'U" + std::to_string(i) + "'})");
  }
  const std::vector<CommitRecord> journal = session.journal();
  ASSERT_EQ(journal.size(), CypherSession::kJournalCapacity);
  // Oldest records were overwritten; order stays chronological.
  EXPECT_EQ(journal.front().sequence, 11u);
  EXPECT_EQ(journal.back().sequence, CypherSession::kJournalCapacity + 10);
  for (std::size_t i = 1; i < journal.size(); ++i) {
    EXPECT_EQ(journal[i].sequence, journal[i - 1].sequence + 1);
  }
}

}  // namespace
}  // namespace adsynth::graphdb
