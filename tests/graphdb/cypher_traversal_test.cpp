// Tests for Cypher-lite traversal patterns: MATCH (a)-[r:T]->(b) with
// RETURN count(r) and DELETE r.
#include <gtest/gtest.h>

#include "graphdb/cypher.hpp"

namespace adsynth::graphdb {
namespace {

class CypherTraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session.run("CREATE (n:User {name: 'A'})");
    session.run("CREATE (n:User {name: 'B'})");
    session.run("CREATE (n:Group {name: 'G1'})");
    session.run("CREATE (n:Group {name: 'G2'})");
    session.run("MATCH (a:User {name: 'A'}), (b:Group {name: 'G1'}) "
                "CREATE (a)-[:MemberOf]->(b)");
    session.run("MATCH (a:User {name: 'A'}), (b:Group {name: 'G2'}) "
                "CREATE (a)-[:MemberOf]->(b)");
    session.run("MATCH (a:User {name: 'B'}), (b:Group {name: 'G1'}) "
                "CREATE (a)-[:MemberOf {fromgpo: true}]->(b)");
  }

  GraphStore store;
  CypherSession session{store};
};

TEST_F(CypherTraversalTest, CountAllOfType) {
  EXPECT_EQ(
      session.run("MATCH (a:User)-[r:MemberOf]->(b:Group) RETURN count(r)")
          .count,
      3);
}

TEST_F(CypherTraversalTest, CountFilteredByEndpoints) {
  EXPECT_EQ(session
                .run("MATCH (a:User {name: 'A'})-[r:MemberOf]->(b:Group) "
                     "RETURN count(r)")
                .count,
            2);
  EXPECT_EQ(session
                .run("MATCH (a:User)-[r:MemberOf]->(b:Group {name: 'G1'}) "
                     "RETURN count(r)")
                .count,
            2);
  EXPECT_EQ(session
                .run("MATCH (a:User {name: 'B'})-[r:MemberOf]->"
                     "(b:Group {name: 'G2'}) RETURN count(r)")
                .count,
            0);
}

TEST_F(CypherTraversalTest, CountFilteredByRelProperty) {
  EXPECT_EQ(session
                .run("MATCH (a:User)-[r:MemberOf {fromgpo: true}]->(b:Group) "
                     "RETURN count(r)")
                .count,
            1);
}

TEST_F(CypherTraversalTest, UnknownTypeCountsZero) {
  EXPECT_EQ(
      session.run("MATCH (a:User)-[r:Teleports]->(b:Group) RETURN count(r)")
          .count,
      0);
}

TEST_F(CypherTraversalTest, DeleteMatchedRelationships) {
  const QueryResult del = session.run(
      "MATCH (a:User {name: 'A'})-[r:MemberOf]->(b:Group) DELETE r");
  EXPECT_EQ(del.rels_deleted, 2u);
  EXPECT_EQ(
      session.run("MATCH (a:User)-[r:MemberOf]->(b:Group) RETURN count(r)")
          .count,
      1);
  EXPECT_EQ(store.rel_count(), 1u);
  // Idempotent: nothing left to delete for A.
  EXPECT_EQ(session
                .run("MATCH (a:User {name: 'A'})-[r:MemberOf]->(b:Group) "
                     "DELETE r")
                .rels_deleted,
            0u);
}

TEST_F(CypherTraversalTest, DeleteRequiresBoundVariable) {
  EXPECT_THROW(
      session.run("MATCH (a:User)-[:MemberOf]->(b:Group) DELETE r"),
      CypherError);
  EXPECT_THROW(
      session.run("MATCH (a:User)-[r:MemberOf]->(b:Group) DELETE x"),
      CypherError);
}

TEST_F(CypherTraversalTest, TraversalRejectsOtherVerbs) {
  EXPECT_THROW(
      session.run("MATCH (a:User)-[r:MemberOf]->(b:Group) SET a.x = 1"),
      CypherError);
  EXPECT_THROW(
      session.run("MATCH (a:User)-[r:MemberOf]->(b:Group) RETURN r"),
      CypherError);
}

}  // namespace
}  // namespace adsynth::graphdb
