#include "graphdb/neo4j_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "util/json.hpp"

namespace adsynth::graphdb {
namespace {

GraphStore sample_store() {
  GraphStore store;
  const NodeId u = store.create_node({"Base", "User"});
  store.set_node_property(u, "name", PropertyValue("ALICE"));
  store.set_node_property(u, "enabled", PropertyValue(true));
  const NodeId g = store.create_node({"Base", "Group"});
  store.set_node_property(g, "name", PropertyValue("DOMAIN ADMINS"));
  const NodeId c = store.create_node({"Computer"});
  store.set_node_property(c, "name", PropertyValue("DC01"));
  PropertyList rel_props;
  put_property(rel_props, store.intern_key("isacl"), PropertyValue(false));
  store.create_relationship(u, g, "MemberOf", std::move(rel_props));
  store.create_relationship(g, c, "AdminTo");
  return store;
}

TEST(ApocJson, ExportEmitsOneRowPerRecord) {
  const GraphStore store = sample_store();
  std::ostringstream out;
  export_apoc_json(store, out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t nodes = 0;
  std::size_t rels = 0;
  while (std::getline(lines, line)) {
    const auto row = util::JsonValue::parse(line);  // every row parses
    const std::string& type = row.at("type").as_string();
    if (type == "node") {
      ++nodes;
      EXPECT_TRUE(row.contains("labels"));
      EXPECT_TRUE(row.contains("properties"));
    } else {
      ++rels;
      EXPECT_TRUE(row.contains("start"));
      EXPECT_TRUE(row.contains("end"));
      EXPECT_TRUE(row.contains("label"));
    }
  }
  EXPECT_EQ(nodes, 3u);
  EXPECT_EQ(rels, 2u);
}

TEST(ApocJson, RoundTripPreservesPropertyTypes) {
  GraphStore store;
  const NodeId n = store.create_node({"User"});
  store.set_node_property(n, "weight", PropertyValue(2.0));  // whole double
  store.set_node_property(n, "logons", PropertyValue(std::int64_t{42}));
  store.set_node_property(n, "title", PropertyValue("42"));  // numeric string
  std::stringstream buffer;
  export_apoc_json(store, buffer);
  const GraphStore imported = import_apoc_json(buffer);
  const PropertyValue* weight = imported.node_property(0, "weight");
  ASSERT_NE(weight, nullptr);
  ASSERT_TRUE(weight->is_double());
  EXPECT_DOUBLE_EQ(weight->as_double(), 2.0);
  const PropertyValue* logons = imported.node_property(0, "logons");
  ASSERT_NE(logons, nullptr);
  EXPECT_TRUE(logons->is_int());
  const PropertyValue* title = imported.node_property(0, "title");
  ASSERT_NE(title, nullptr);
  EXPECT_TRUE(title->is_string());
}

TEST(ApocJson, RoundTripPreservesGraph) {
  const GraphStore store = sample_store();
  std::stringstream buffer;
  export_apoc_json(store, buffer);
  const GraphStore imported = import_apoc_json(buffer);
  EXPECT_EQ(imported.node_count(), store.node_count());
  EXPECT_EQ(imported.rel_count(), store.rel_count());
  const auto das =
      imported.find_nodes("Group", "name", PropertyValue("DOMAIN ADMINS"));
  ASSERT_EQ(das.size(), 1u);
  // Relationship endpoints and properties survive.
  bool member_of_found = false;
  for (RelId r = 0; r < imported.rel_capacity(); ++r) {
    if (imported.rel_type_name(imported.rel(r).type) == "MemberOf") {
      member_of_found = true;
      EXPECT_EQ(imported.rel(r).target, das[0]);
      const auto key = imported.find_key("isacl");
      ASSERT_TRUE(key.has_value());
      EXPECT_FALSE(
          get_property(imported.rel(r).properties, *key)->as_bool());
    }
  }
  EXPECT_TRUE(member_of_found);
}

TEST(ApocJson, DeletedRelationshipsSkipped) {
  GraphStore store = sample_store();
  store.delete_relationship(0);
  std::ostringstream out;
  export_apoc_json(store, out);
  EXPECT_EQ(out.str().find("MemberOf"), std::string::npos);
}

TEST(ApocJson, ImportToleratesBlankLinesAndForwardRefs) {
  // A relationship row before its node rows (nonstandard but resolvable).
  const std::string dump =
      R"({"type":"relationship","id":"0","label":"AdminTo","properties":{},)"
      R"("start":{"id":"n1","labels":["Group"]},"end":{"id":"n2","labels":["Computer"]}})"
      "\n\n"
      R"({"type":"node","id":"n1","labels":["Group"],"properties":{"name":"G"}})"
      "\n"
      R"({"type":"node","id":"n2","labels":["Computer"],"properties":{"name":"C"}})"
      "\n";
  std::istringstream in(dump);
  const GraphStore store = import_apoc_json(in);
  EXPECT_EQ(store.node_count(), 2u);
  EXPECT_EQ(store.rel_count(), 1u);
}

TEST(ApocJson, ImportRejectsBadInput) {
  {
    std::istringstream in("{not json}\n");
    EXPECT_THROW(import_apoc_json(in), std::runtime_error);
  }
  {
    std::istringstream in(R"({"type":"mystery","id":"0"})" "\n");
    EXPECT_THROW(import_apoc_json(in), std::runtime_error);
  }
  {
    // Dangling relationship endpoint.
    std::istringstream in(
        R"({"type":"relationship","id":"0","label":"X","properties":{},)"
        R"("start":{"id":"a"},"end":{"id":"b"}})" "\n");
    EXPECT_THROW(import_apoc_json(in), std::runtime_error);
  }
  {
    // Duplicate node id.
    std::istringstream in(
        R"({"type":"node","id":"a","labels":["User"],"properties":{}})" "\n"
        R"({"type":"node","id":"a","labels":["User"],"properties":{}})" "\n");
    EXPECT_THROW(import_apoc_json(in), std::runtime_error);
  }
}

TEST(ApocJson, FileRoundTrip) {
  const GraphStore store = sample_store();
  const std::string path = ::testing::TempDir() + "/adsynth_io_test.json";
  export_apoc_json_file(store, path);
  const GraphStore imported = import_apoc_json_file(path);
  EXPECT_EQ(imported.node_count(), store.node_count());
  EXPECT_EQ(imported.rel_count(), store.rel_count());
  EXPECT_THROW(import_apoc_json_file("/nonexistent/nope.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace adsynth::graphdb
