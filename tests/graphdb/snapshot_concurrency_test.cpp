// Concurrent-serving stress: one writer commits/aborts in a loop while
// reader threads run prepared Cypher and what-if BFS against snapshots.
//
// Every committed epoch registers its expected fingerprint (user count,
// marker version, what-if survivor count) BEFORE the commit publishes, so
// whatever view a reader grabs, the fingerprint it computes must match its
// epoch exactly — a reader observing a half-applied batch, a stale index
// bucket or a torn overlay fails the consistency assert, and TSan (this
// suite runs in the thread lane, scripts/ci.sh `tsan.concurrency`) fails
// on any racing access underneath.  Readers also assert epoch monotonicity
// (snapshots never travel back in time) and the teardown asserts that
// reclamation drained every retired epoch.
//
// Pacing: the writer yields until the reader pool makes progress between
// commits (atomic iteration counter) — no sleeps, per the determinism
// lint.  Reader count comes from ADSYNTH_TEST_THREADS (default 8, the CI
// lane's value).
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "defense/edge_block.hpp"
#include "defense/whatif.hpp"
#include "graphdb/cypher.hpp"
#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"
#include "support/checked_store.hpp"

namespace adsynth::graphdb {
namespace {

using test_support::expect_store_invariants;

std::size_t reader_thread_count() {
  if (const char* env = std::getenv("ADSYNTH_TEST_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 8;
}

/// Expected committed state of one epoch.
struct Fingerprint {
  std::int64_t users_total = 0;   // MATCH (n:User) RETURN count(n)
  std::int64_t version = 0;       // marker property on the DA group
  std::size_t survivors = 0;      // defense::SnapshotWhatIf entry survivors
};

TEST(ConcurrentServing, ReadersObserveOnlyCommittedEpochFingerprints) {
  // The whatif funnel fixture: three entry users reach DOMAIN ADMINS
  // through admin a1; every probe user the writer adds joins g1 and
  // becomes one more survivor.
  GraphStore store;
  const auto user = [&](const char* name, bool enabled, bool admin) {
    const NodeId n = store.create_node({"User"});
    store.set_node_property(n, "name", PropertyValue(name));
    store.set_node_property(n, "enabled", PropertyValue(enabled));
    if (admin) store.set_node_property(n, "admin", PropertyValue(true));
    return n;
  };
  const NodeId da = store.create_node({"Group"});
  store.set_node_property(da, "name", PropertyValue("DOMAIN ADMINS"));
  store.set_node_property(da, "version", PropertyValue(std::int64_t{0}));
  const NodeId u1 = user("U1", true, false);
  const NodeId u2 = user("U2", true, false);
  const NodeId u3 = user("U3", true, false);
  user("U4", false, false);
  const NodeId a1 = user("A1", true, true);
  const NodeId g1 = store.create_node({"Group"});
  store.set_node_property(g1, "name", PropertyValue("HELPDESK"));
  const NodeId c1 = store.create_node({"Computer"});
  store.create_relationship(u1, g1, "MemberOf");
  store.create_relationship(g1, c1, "AdminTo");
  store.create_relationship(u2, c1, "AdminTo");
  store.create_relationship(u3, c1, "AdminTo");
  store.create_relationship(c1, a1, "HasSession");
  store.create_relationship(a1, da, "MemberOf");
  store.create_index("Group", "name");

  CypherSession session(store);
  const PreparedStatement count_users =
      session.prepare("MATCH (n:User) RETURN count(n)");
  const PreparedStatement da_version = session.prepare(
      "MATCH (g:Group {name: 'DOMAIN ADMINS'}) RETURN g.version");

  // Epoch -> expected fingerprint, registered before the epoch publishes.
  std::mutex expected_mutex;
  std::map<std::uint64_t, Fingerprint> expected;

  // First materialization runs on the writer thread, at rest, before any
  // reader starts — the documented contract.
  Snapshot initial = store.snapshot();
  expected[initial->epoch()] = Fingerprint{5, 0, 3};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reader_iterations{0};
  std::atomic<std::size_t> failed_readers{0};
  const std::size_t reader_count = reader_thread_count();
  std::vector<std::string> failures(reader_count);
  std::vector<std::thread> readers;
  readers.reserve(reader_count);
  for (std::size_t slot = 0; slot < reader_count; ++slot) {
    readers.emplace_back([&, slot] {
      // failures[slot] is this thread's private slot until join();
      // failed_readers is the cross-thread signal.
      auto fail = [&](const std::string& msg) {
        if (failures[slot].empty()) {
          failures[slot] = msg;
          failed_readers.fetch_add(1, std::memory_order_release);
        }
      };
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const Snapshot snap = store.snapshot();
        const std::uint64_t epoch = snap->epoch();
        if (epoch < last_epoch) {
          fail("epoch moved backwards: " + std::to_string(epoch) + " after " +
               std::to_string(last_epoch));
          break;
        }
        last_epoch = epoch;
        Fingerprint want;
        {
          std::lock_guard<std::mutex> lock(expected_mutex);
          const auto it = expected.find(epoch);
          if (it == expected.end()) {
            fail("epoch " + std::to_string(epoch) +
                 " published without a registered fingerprint");
            break;
          }
          want = it->second;
        }
        const std::int64_t users =
            CypherSession::execute_read(snap, count_users).count;
        const QueryResult version_rows =
            CypherSession::execute_read(snap, da_version);
        const std::int64_t version =
            version_rows.rows.empty() ? -1
                                      : version_rows.rows[0][0].as_int();
        const defense::SnapshotWhatIf whatif(snap);
        const std::size_t survivors = whatif.survivors(defense::WhatIfOverlay{});
        if (users != want.users_total || version != want.version ||
            survivors != want.survivors) {
          fail("epoch " + std::to_string(epoch) + ": observed (" +
               std::to_string(users) + ", " + std::to_string(version) + ", " +
               std::to_string(survivors) + "), expected (" +
               std::to_string(want.users_total) + ", " +
               std::to_string(want.version) + ", " +
               std::to_string(want.survivors) + ")");
          break;
        }
        reader_iterations.fetch_add(1, std::memory_order_release);
      }
    });
  }

  // Writer loop: alternate committed batches (one probe user wired into
  // the funnel + a version bump) with aborted ones (which must publish
  // nothing).  Every write runs inside an undo scope, so snapshot() stays
  // on the lock-free fast path for the readers throughout.
  constexpr int kRounds = 48;
  std::int64_t users_total = 5;
  std::int64_t version = 0;
  std::size_t survivors = 3;
  for (int round = 0; round < kRounds; ++round) {
    const bool abort = (round % 3) == 2;
    if (abort) {
      store.begin_undo_scope();
      const NodeId ghost = store.create_node({"User"});
      store.set_node_property(ghost, "enabled", PropertyValue(true));
      store.create_relationship(ghost, g1, "MemberOf");
      store.set_node_property(da, "version",
                              PropertyValue(std::int64_t{-999}));
      store.abort_scope();
    } else {
      ++users_total;
      ++version;
      ++survivors;
      {
        // Register the fingerprint under the epoch this commit will
        // publish, BEFORE it becomes visible.
        std::lock_guard<std::mutex> lock(expected_mutex);
        expected[store.snapshot_stats().current_epoch + 1] =
            Fingerprint{users_total, version, survivors};
      }
      store.begin_undo_scope();
      const NodeId probe = store.create_node({"User"});
      store.set_node_property(probe, "enabled", PropertyValue(true));
      store.create_relationship(probe, g1, "MemberOf");
      store.set_node_property(da, "version",
                              PropertyValue(std::int64_t{version}));
      store.commit_scope();
    }
    // Pace: let the reader pool observe this state before moving on.
    const std::uint64_t seen = reader_iterations.load(std::memory_order_acquire);
    while (reader_iterations.load(std::memory_order_acquire) < seen + 2 &&
           !done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      // A reader that failed stops iterating; don't deadlock on it.
      if (failed_readers.load(std::memory_order_acquire) != 0) {
        done.store(true, std::memory_order_release);
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (std::size_t slot = 0; slot < reader_count; ++slot) {
    EXPECT_EQ(failures[slot], "") << "reader " << slot;
  }

  // Committed state is exactly the writer's bookkeeping...
  EXPECT_EQ(session.execute(count_users).count, users_total);
  const Snapshot final_snap = store.snapshot();
  EXPECT_EQ(CypherSession::execute_read(final_snap, da_version)
                .rows[0][0]
                .as_int(),
            version);

  // ...and reclamation drained every retired epoch: once the pinned first
  // view drops, only the final view (held here + the published tail) is
  // live, and the version-chain audit is green at teardown.
  initial.reset();
  const SnapshotStats stats = store.snapshot_stats();
  EXPECT_EQ(stats.live_views, 1u);
  EXPECT_EQ(stats.oldest_live_epoch, final_snap->epoch());
  EXPECT_EQ(stats.published_views - stats.reclaimed_views, 1u);
  expect_store_invariants(store);
}

TEST(ConcurrentServing, ParallelWhatIfAgainstSnapshotWhileWriterCommits) {
  // defense::block_edges_snapshot forks overlay branches on the pool; the
  // writer keeps committing underneath.  The probe result must equal the
  // serial result for the state the snapshot froze, whatever the writer
  // does afterwards.
  GraphStore store;
  const NodeId da = store.create_node({"Group"});
  store.set_node_property(da, "name", PropertyValue("DOMAIN ADMINS"));
  const NodeId a1 = store.create_node({"User"});
  store.set_node_property(a1, "name", PropertyValue("A1"));
  store.set_node_property(a1, "enabled", PropertyValue(true));
  store.set_node_property(a1, "admin", PropertyValue(true));
  const NodeId c1 = store.create_node({"Computer"});
  const NodeId g1 = store.create_node({"Group"});
  store.set_node_property(g1, "name", PropertyValue("HELPDESK"));
  for (int i = 0; i < 6; ++i) {
    const NodeId u = store.create_node({"User"});
    store.set_node_property(u, "name",
                            PropertyValue("U" + std::to_string(i)));
    store.set_node_property(u, "enabled", PropertyValue(true));
    store.create_relationship(u, g1, "MemberOf");
  }
  const RelId g1_to_c1 = store.create_relationship(g1, c1, "AdminTo");
  store.create_relationship(c1, a1, "HasSession");
  store.create_relationship(a1, da, "MemberOf");

  const defense::LiveEdgeBlockResult serial =
      defense::block_edges_live(store, /*budget=*/2);

  const Snapshot snap = store.snapshot();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    int i = 0;
    while (!done.load(std::memory_order_acquire)) {
      store.begin_undo_scope();
      const NodeId extra = store.create_node({"User"});
      store.set_node_property(extra, "enabled", PropertyValue(true));
      store.create_relationship(extra, g1, "MemberOf");
      if (++i % 2 == 0) {
        store.commit_scope();
      } else {
        store.abort_scope();
      }
      std::this_thread::yield();
    }
  });

  const defense::SnapshotWhatIf whatif(snap);
  const defense::WhatIfOverlay base;
  for (int repeat = 0; repeat < 20; ++repeat) {
    const std::vector<RelId> path = whatif.shortest_attack_path(base);
    ASSERT_EQ(path.size(), 4u);  // u -> g1 -> c1 -> a1 -> DA
    const std::vector<std::size_t> alive =
        defense::parallel_edge_survivors(whatif, base, path);
    // Only the first hop is private to one user; every later hop is the
    // funnel all six share.
    EXPECT_EQ(alive[0], 5u);
    EXPECT_EQ(alive[1], 0u);
    EXPECT_EQ(alive[2], 0u);
    EXPECT_EQ(alive[3], 0u);
  }
  done.store(true, std::memory_order_release);
  writer.join();

  // The serial greedy picked the first full cut on the path: g1 -> c1.
  EXPECT_EQ(serial.blocked_rels, std::vector<RelId>{g1_to_c1});
  expect_store_invariants(store);
}

}  // namespace
}  // namespace adsynth::graphdb
