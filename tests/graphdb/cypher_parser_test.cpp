// Table-driven negative suite for the Cypher frontend: every rejected
// statement must throw CypherError whose message carries the byte offset of
// the offending token, and a failed parse must never mutate the store
// (checked by running each bad statement through a live session and
// auditing invariants afterwards).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graphdb/cypher.hpp"
#include "graphdb/cypher_parser.hpp"
#include "support/checked_store.hpp"

namespace adsynth::graphdb {
namespace {

struct BadStatement {
  const char* name;
  const char* text;
  /// Substring the error message must contain (diagnostic quality pin).
  const char* expect_substr;
  /// Byte offset the message must report, or -1 to skip the offset check.
  int expect_offset;
};

const BadStatement kBadStatements[] = {
    // --- lexer: strict number literals (1.2.3 / 1e / 5e+ / 12abc) ---
    {"DottedVersionNumber", "CREATE (n:User {v: 1.2.3})",
     "malformed numeric literal", 22},
    {"ExponentWithoutDigits", "CREATE (n:User {v: 1e})",
     "exponent needs digits", 21},
    {"SignedExponentWithoutDigits", "CREATE (n:User {v: 5e+})",
     "exponent needs digits", 22},
    {"NumberGluedToIdent", "CREATE (n:User {v: 12abc})",
     "malformed numeric literal", 21},
    // '1.' lexes as the int 1 (the '.' only joins a number when a digit
    // follows), so the stray '.' is a property-map separator error.
    {"LoneDecimalPoint", "CREATE (n:User {v: 1.})",
     "expected ',' or '}' in property map", 20},
    {"UnterminatedString", "CREATE (n:User {name: 'oops})",
     "unterminated string literal", 22},
    // --- parser: structure ---
    {"EmptyStatement", "", "expected identifier", 0},
    {"UnknownVerb", "FROBNICATE (n)", "expected CREATE, MERGE or MATCH", 11},
    {"MissingPattern", "MATCH RETURN n", "expected '('", 6},
    {"UnclosedNodePattern", "MATCH (n:User RETURN n", "expected ')'", 14},
    {"MissingReturnItem", "MATCH (n:User) RETURN", "expected identifier", 21},
    {"TrailingGarbage", "MATCH (n:User) RETURN n garbage", "trailing tokens",
     24},
    {"StrayCaret", "MATCH (n:User) RETURN n ^", "trailing tokens", 24},
    {"BareExplain", "EXPLAIN", "expected identifier", 7},
    // --- var-length bounds ---
    {"InvertedHopBounds", "MATCH (a:User)-[r:MemberOf*3..1]->(b:Group) "
                          "RETURN count(b)",
     "variable-length bounds are inverted", -1},
    {"HopsOnCreate", "MATCH (a:User), (b:Group) CREATE (a)-[r:MemberOf*1..2]"
                     "->(b)",
     "cannot CREATE a variable-length relationship", 26},
    // --- WHERE / RETURN validation (planner; no byte offsets) ---
    {"WhereUnboundVariable",
     "MATCH (n:User) WHERE m.name = 'x' RETURN count(n)",
     "unbound variable m", -1},
    {"ReturnRelVariable",
     "MATCH (a:User)-[r:MemberOf]->(b:Group) RETURN r",
     "relationship variable", -1},
    {"MixedCountAndColumn",
     "MATCH (n:User) RETURN count(n), n.name", "cannot mix count", -1},
    {"VarLengthRelPropertyProjection",
     "MATCH (a:User)-[r:MemberOf*1..3]->(b:Group) RETURN r.weight",
     "variable-length", -1},
    {"VarLengthRelPropertyFilter",
     "MATCH (a:User)-[r:MemberOf*1..3]->(b:Group) WHERE r.weight = 1 "
     "RETURN count(b)",
     "variable-length", -1},
    {"LimitWithoutNumber", "MATCH (n:User) RETURN n LIMIT x",
     "unexpected identifier 'x'", 30},
    // --- anchors / paths ---
    {"UnlabeledAnchor", "MATCH (n) RETURN count(n)",
     "Cypher-lite requires a label", -1},
    {"CartesianReadProduct",
     "MATCH (a:User), (b:Group) RETURN count(a)", "cartesian", -1},
    {"DuplicatePathVariable",
     "MATCH (a:User)-[r:MemberOf]->(a:Group) RETURN count(a)",
     "duplicate variable", -1},
    // --- DELETE / SET shape (historical diagnostics preserved) ---
    {"DeleteUnboundVariable", "MATCH (n:User) DELETE x",
     "DELETE expects a bound node variable", -1},
    {"SetUnboundVariable", "MATCH (n:User) SET m.name = 'x'",
     "SET expects the bound node variable", -1},
    // --- params ---
    {"ParamMissingName", "MATCH (n:User {name: $}) RETURN count(n)",
     "expected parameter name after '$'", -1},
};

using CypherParserNegative = ::testing::TestWithParam<BadStatement>;

TEST_P(CypherParserNegative, ThrowsCypherErrorAtOffset) {
  const BadStatement& bad = GetParam();
  GraphStore store;
  // Seed a store so statements fail in the frontend, not on empty data.
  const NodeId u = store.create_node({"User"});
  const NodeId g = store.create_node({"Group"});
  store.create_relationship(u, g, "MemberOf");
  CypherSession session(store);
  try {
    session.run(bad.text);
    FAIL() << "statement accepted: " << bad.text;
  } catch (const CypherError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(bad.expect_substr), std::string::npos)
        << "message: " << msg;
    if (bad.expect_offset >= 0) {
      const std::string marker =
          "near byte " + std::to_string(bad.expect_offset) + ":";
      EXPECT_NE(msg.find(marker), std::string::npos) << "message: " << msg;
    }
  }
  // A rejected statement must leave the store untouched and consistent.
  EXPECT_EQ(store.node_count(), 2u);
  EXPECT_EQ(store.rel_count(), 1u);
  test_support::expect_store_invariants(store);
}

INSTANTIATE_TEST_SUITE_P(
    AllBadStatements, CypherParserNegative,
    ::testing::ValuesIn(kBadStatements),
    [](const ::testing::TestParamInfo<BadStatement>& info) {
      return info.param.name;
    });

TEST(CypherParser, StrictNumbersThatMustLex) {
  // Positive side of the strict-number rule: these must all parse.
  GraphStore store;
  CypherSession session(store);
  session.run("CREATE (n:T {a: 1, b: -2, c: 3.5, d: 1e3, e: 2.5e-2, "
              "f: -0.5})");
  const auto result = session.run("MATCH (n:T) RETURN count(n)");
  EXPECT_EQ(result.count, 1u);
  const PropertyValue* d = store.node_property(0, "d");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->is_double());
  EXPECT_DOUBLE_EQ(d->as_double(), 1000.0);
}

TEST(CypherParser, RangeTokenDoesNotEatNumbers) {
  // '1..2' must lex as NUMBER RANGE NUMBER (hop bounds), never as the
  // malformed float '1.' followed by '.2'.
  GraphStore store;
  const NodeId a = store.create_node({"User"});
  const NodeId b = store.create_node({"Group"});
  store.create_relationship(a, b, "MemberOf");
  CypherSession session(store);
  const auto result = session.run(
      "MATCH (a:User)-[r:MemberOf*1..2]->(b:Group) RETURN count(b)");
  EXPECT_EQ(result.count, 1u);
}

TEST(CypherParser, ParseIsPureNoStoreNeeded) {
  // parse() is a pure function of the text: AST shape checks, no store.
  const cypher::Query q = cypher::parse(
      "EXPLAIN MATCH (a:User {name: $who})-[r:MemberOf*2..4]->(b:Group) "
      "WHERE b.highvalue = true RETURN count(b) LIMIT 5;");
  EXPECT_TRUE(q.explain);
  EXPECT_EQ(q.verb, cypher::Verb::kMatchRead);
  ASSERT_EQ(q.paths.size(), 1u);
  ASSERT_EQ(q.paths[0].rels.size(), 1u);
  const cypher::RelPat& rel = q.paths[0].rels[0];
  EXPECT_TRUE(rel.var_length);
  EXPECT_EQ(rel.min_hops, 2u);
  EXPECT_EQ(rel.max_hops, 4u);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].var, "b");
  EXPECT_EQ(q.where[0].key, "highvalue");
  ASSERT_EQ(q.returns.size(), 1u);
  EXPECT_EQ(q.returns[0].kind, cypher::ReturnItem::Kind::kCount);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(q.limit->literal.as_int(), 5);
  ASSERT_EQ(q.paths[0].nodes[0].props.size(), 1u);
  EXPECT_TRUE(q.paths[0].nodes[0].props[0].second.is_param());
}

TEST(CypherParser, HopBoundVariants) {
  using cypher::RelPat;
  auto rel_of = [](const char* text) {
    return cypher::parse(text).paths[0].rels[0];
  };
  {
    const RelPat r =
        rel_of("MATCH (a:U)-[x:T*]->(b:G) RETURN count(b)");
    EXPECT_TRUE(r.var_length);
    EXPECT_EQ(r.min_hops, 1u);
    EXPECT_EQ(r.max_hops, RelPat::kUnboundedHops);
  }
  {
    const RelPat r =
        rel_of("MATCH (a:U)-[x:T*3]->(b:G) RETURN count(b)");
    EXPECT_EQ(r.min_hops, 3u);
    EXPECT_EQ(r.max_hops, 3u);
  }
  {
    const RelPat r =
        rel_of("MATCH (a:U)-[x:T*..4]->(b:G) RETURN count(b)");
    EXPECT_EQ(r.min_hops, 1u);
    EXPECT_EQ(r.max_hops, 4u);
  }
  {
    const RelPat r =
        rel_of("MATCH (a:U)-[x:T*2..]->(b:G) RETURN count(b)");
    EXPECT_EQ(r.min_hops, 2u);
    EXPECT_EQ(r.max_hops, RelPat::kUnboundedHops);
  }
  {
    const RelPat r =
        rel_of("MATCH (a:U)-[x:T]->(b:G) RETURN count(b)");
    EXPECT_FALSE(r.var_length);
  }
}

}  // namespace
}  // namespace adsynth::graphdb
