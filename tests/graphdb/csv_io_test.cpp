#include "graphdb/csv_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace adsynth::graphdb {
namespace {

GraphStore sample_store() {
  GraphStore store;
  const NodeId u = store.create_node({"Base", "User"});
  store.set_node_property(u, "name", PropertyValue("A,LICE"));
  store.set_node_property(u, "enabled", PropertyValue(true));
  const NodeId g = store.create_node({"Group"});
  store.set_node_property(g, "name", PropertyValue("say \"hi\""));
  PropertyList props;
  put_property(props, store.intern_key("violation"), PropertyValue(true));
  store.create_relationship(u, g, "MemberOf", std::move(props));
  return store;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvExport, NodesHeaderAndRows) {
  const GraphStore store = sample_store();
  std::ostringstream out;
  export_nodes_csv(store, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);  // header + 2 nodes
  EXPECT_EQ(lines[0], "id,labels,name,enabled");
  EXPECT_EQ(lines[1], "0,Base;User,\"A,LICE\",true");
  EXPECT_EQ(lines[2], "1,Group,\"say \"\"hi\"\"\",");
}

TEST(CsvExport, EdgesHeaderAndRows) {
  const GraphStore store = sample_store();
  std::ostringstream out;
  export_edges_csv(store, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "source,target,type,violation");
  EXPECT_EQ(lines[1], "0,1,MemberOf,true");
}

TEST(CsvExport, DeletedRecordsSkipped) {
  GraphStore store = sample_store();
  store.delete_relationship(0);
  std::ostringstream out;
  export_edges_csv(store, out);
  EXPECT_EQ(lines_of(out.str()).size(), 1u);  // header only
}

TEST(CsvExport, FilesWritten) {
  const GraphStore store = sample_store();
  const std::string prefix = ::testing::TempDir() + "/adsynth_csv_test";
  export_csv_files(store, prefix);
  std::ifstream nodes(prefix + "_nodes.csv");
  std::ifstream edges(prefix + "_edges.csv");
  EXPECT_TRUE(nodes.good());
  EXPECT_TRUE(edges.good());
  EXPECT_THROW(export_csv_files(store, "/nonexistent/dir/x"),
               std::runtime_error);
}

TEST(CsvExport, EmptyStore) {
  GraphStore store;
  std::ostringstream nodes;
  export_nodes_csv(store, nodes);
  EXPECT_EQ(nodes.str(), "id,labels\n");
  std::ostringstream edges;
  export_edges_csv(store, edges);
  EXPECT_EQ(edges.str(), "source,target,type\n");
}

TEST(CsvCodec, UnambiguousStringsExportRaw) {
  EXPECT_EQ(encode_property_cell(PropertyValue("ALICE")), "ALICE");
  EXPECT_EQ(encode_property_cell(PropertyValue("S-1-5-21-3")), "S-1-5-21-3");
  EXPECT_EQ(decode_property_cell("ALICE"), PropertyValue("ALICE"));
}

TEST(CsvCodec, AmbiguousStringsExportQuoted) {
  // Strings that would read back as another type export as JSON strings.
  EXPECT_EQ(encode_property_cell(PropertyValue("true")), "\"true\"");
  EXPECT_EQ(encode_property_cell(PropertyValue("42")), "\"42\"");
  EXPECT_EQ(encode_property_cell(PropertyValue("-1.5")), "\"-1.5\"");
  EXPECT_EQ(encode_property_cell(PropertyValue("null")), "\"null\"");
  EXPECT_EQ(encode_property_cell(PropertyValue("")), "\"\"");
  EXPECT_EQ(decode_property_cell("\"true\""), PropertyValue("true"));
  EXPECT_EQ(decode_property_cell("\"42\""), PropertyValue("42"));
}

TEST(CsvCodec, TypedValuesRoundTrip) {
  const PropertyValue samples[] = {
      PropertyValue(true),
      PropertyValue(false),
      PropertyValue(std::int64_t{42}),
      PropertyValue(std::int64_t{-7}),
      PropertyValue(2.0),  // whole-valued double must stay a double
      PropertyValue(3.5),
      PropertyValue(std::vector<std::string>{"a", "b,c", "say \"hi\""}),
      PropertyValue("plain name"),
      PropertyValue("line\nbreak"),
  };
  for (const PropertyValue& v : samples) {
    const std::string cell = encode_property_cell(v);
    EXPECT_EQ(decode_property_cell(cell), v) << "cell: " << cell;
  }
}

TEST(CsvCodec, WholeDoubleKeepsTypeThroughCell) {
  const std::string cell = encode_property_cell(PropertyValue(2.0));
  EXPECT_EQ(cell, "2.0");
  const PropertyValue back = decode_property_cell(cell);
  ASSERT_TRUE(back.is_double());
  EXPECT_DOUBLE_EQ(back.as_double(), 2.0);
}

GraphStore typed_store() {
  GraphStore store;
  const NodeId u = store.create_node({"Base", "User"});
  store.set_node_property(u, "name", PropertyValue("A,LICE"));
  store.set_node_property(u, "enabled", PropertyValue(true));
  store.set_node_property(u, "logons", PropertyValue(std::int64_t{42}));
  store.set_node_property(u, "weight", PropertyValue(2.0));
  store.set_node_property(u, "title", PropertyValue("true"));  // ambiguous
  store.set_node_property(
      u, "spns", PropertyValue(std::vector<std::string>{"ldap/dc", "cifs"}));
  const NodeId g = store.create_node({"Group"});
  store.set_node_property(g, "name", PropertyValue("say \"hi\"\nline2"));
  PropertyList props;
  put_property(props, store.intern_key("violation"), PropertyValue(true));
  put_property(props, store.intern_key("cost"), PropertyValue(3.5));
  store.create_relationship(u, g, "MemberOf", std::move(props));
  return store;
}

TEST(CsvRoundTrip, ExportImportExportIsByteIdentical) {
  const GraphStore original = typed_store();
  std::ostringstream nodes1, edges1;
  export_nodes_csv(original, nodes1);
  export_edges_csv(original, edges1);

  GraphStore rebuilt;
  std::istringstream nodes_in(nodes1.str());
  std::istringstream edges_in(edges1.str());
  const CsvImportStats stats = import_csv(rebuilt, nodes_in, edges_in);
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.rels, 1u);

  std::ostringstream nodes2, edges2;
  export_nodes_csv(rebuilt, nodes2);
  export_edges_csv(rebuilt, edges2);
  EXPECT_EQ(nodes2.str(), nodes1.str());
  EXPECT_EQ(edges2.str(), edges1.str());
}

TEST(CsvRoundTrip, PropertiesBitIdenticalAfterImport) {
  const GraphStore original = typed_store();
  std::ostringstream nodes_out, edges_out;
  export_nodes_csv(original, nodes_out);
  export_edges_csv(original, edges_out);
  GraphStore rebuilt;
  std::istringstream nodes_in(nodes_out.str());
  std::istringstream edges_in(edges_out.str());
  import_csv(rebuilt, nodes_in, edges_in);

  for (const char* key :
       {"name", "enabled", "logons", "weight", "title", "spns"}) {
    const PropertyValue* a = original.node_property(0, key);
    const PropertyValue* b = rebuilt.node_property(0, key);
    ASSERT_NE(a, nullptr) << key;
    ASSERT_NE(b, nullptr) << key;
    EXPECT_EQ(*a, *b) << key;
    EXPECT_EQ(a->index_key(), b->index_key()) << key;  // same variant alt
  }
  EXPECT_EQ(rebuilt.rel_type_name(rebuilt.rel(0).type), "MemberOf");
  const PropertyValue* cost =
      get_property(rebuilt.rel(0).properties, rebuilt.intern_key("cost"));
  ASSERT_NE(cost, nullptr);
  ASSERT_TRUE(cost->is_double());
  EXPECT_DOUBLE_EQ(cost->as_double(), 3.5);
}

TEST(CsvImport, FileRoundTripAndErrors) {
  const GraphStore original = typed_store();
  const std::string prefix = ::testing::TempDir() + "/adsynth_csv_rt";
  export_csv_files(original, prefix);
  GraphStore rebuilt;
  const CsvImportStats stats = import_csv_files(rebuilt, prefix);
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.rels, 1u);
  EXPECT_THROW(import_csv_files(rebuilt, "/nonexistent/dir/x"),
               std::runtime_error);
}

TEST(CsvImport, MalformedInputThrows) {
  GraphStore store;
  {  // bad nodes header
    std::istringstream nodes("oops,labels\n"), edges("source,target,type\n");
    EXPECT_THROW(import_csv(store, nodes, edges), std::runtime_error);
  }
  {  // ragged nodes row
    std::istringstream nodes("id,labels,name\n0,User\n");
    std::istringstream edges("source,target,type\n");
    EXPECT_THROW(import_csv(store, nodes, edges), std::runtime_error);
  }
  {  // edge referencing an unknown node id
    std::istringstream nodes("id,labels\n0,User\n");
    std::istringstream edges("source,target,type\n0,9,MemberOf\n");
    EXPECT_THROW(import_csv(store, nodes, edges), std::runtime_error);
  }
  {  // non-numeric node id
    std::istringstream nodes("id,labels\nx,User\n");
    std::istringstream edges("source,target,type\n");
    EXPECT_THROW(import_csv(store, nodes, edges), std::runtime_error);
  }
}

TEST(CsvImport, TombstonedIdsNeedNotBeDense) {
  GraphStore original = sample_store();
  const NodeId extra = original.create_node({"Computer"});
  original.create_relationship(extra, 0, "AdminTo");
  original.delete_relationship(1);
  original.delete_node(extra);  // export ids 0,1 stay; id 2 vanishes
  std::ostringstream nodes_out, edges_out;
  export_nodes_csv(original, nodes_out);
  export_edges_csv(original, edges_out);
  GraphStore rebuilt;
  std::istringstream nodes_in(nodes_out.str());
  std::istringstream edges_in(edges_out.str());
  const CsvImportStats stats = import_csv(rebuilt, nodes_in, edges_in);
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.rels, 1u);
}

}  // namespace
}  // namespace adsynth::graphdb
