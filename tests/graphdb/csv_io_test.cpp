#include "graphdb/csv_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace adsynth::graphdb {
namespace {

GraphStore sample_store() {
  GraphStore store;
  const NodeId u = store.create_node({"Base", "User"});
  store.set_node_property(u, "name", PropertyValue("A,LICE"));
  store.set_node_property(u, "enabled", PropertyValue(true));
  const NodeId g = store.create_node({"Group"});
  store.set_node_property(g, "name", PropertyValue("say \"hi\""));
  PropertyList props;
  put_property(props, store.intern_key("violation"), PropertyValue(true));
  store.create_relationship(u, g, "MemberOf", std::move(props));
  return store;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvExport, NodesHeaderAndRows) {
  const GraphStore store = sample_store();
  std::ostringstream out;
  export_nodes_csv(store, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);  // header + 2 nodes
  EXPECT_EQ(lines[0], "id,labels,name,enabled");
  EXPECT_EQ(lines[1], "0,Base;User,\"A,LICE\",true");
  EXPECT_EQ(lines[2], "1,Group,\"say \"\"hi\"\"\",");
}

TEST(CsvExport, EdgesHeaderAndRows) {
  const GraphStore store = sample_store();
  std::ostringstream out;
  export_edges_csv(store, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "source,target,type,violation");
  EXPECT_EQ(lines[1], "0,1,MemberOf,true");
}

TEST(CsvExport, DeletedRecordsSkipped) {
  GraphStore store = sample_store();
  store.delete_relationship(0);
  std::ostringstream out;
  export_edges_csv(store, out);
  EXPECT_EQ(lines_of(out.str()).size(), 1u);  // header only
}

TEST(CsvExport, FilesWritten) {
  const GraphStore store = sample_store();
  const std::string prefix = ::testing::TempDir() + "/adsynth_csv_test";
  export_csv_files(store, prefix);
  std::ifstream nodes(prefix + "_nodes.csv");
  std::ifstream edges(prefix + "_edges.csv");
  EXPECT_TRUE(nodes.good());
  EXPECT_TRUE(edges.good());
  EXPECT_THROW(export_csv_files(store, "/nonexistent/dir/x"),
               std::runtime_error);
}

TEST(CsvExport, EmptyStore) {
  GraphStore store;
  std::ostringstream nodes;
  export_nodes_csv(store, nodes);
  EXPECT_EQ(nodes.str(), "id,labels\n");
  std::ostringstream edges;
  export_edges_csv(store, edges);
  EXPECT_EQ(edges.str(), "source,target,type\n");
}

}  // namespace
}  // namespace adsynth::graphdb
