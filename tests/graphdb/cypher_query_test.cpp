// Feature tests for the query frontend: variable-length patterns checked
// bit-identically against the util::bfs_distances oracle, EXPLAIN plan
// selection (index-seek vs label-scan), $param binding, WHERE/LIMIT/
// projections, and the prepared-statement plan cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graphdb/cypher.hpp"
#include "support/checked_store.hpp"
#include "util/csr.hpp"

namespace adsynth::graphdb {
namespace {

using test_support::tag;

/// Deterministic sparse digraph: kNodes nodes labelled :N with a unique
/// int property k, and E edges per node chosen by a fixed affine map.
constexpr std::size_t kNodes = 30;

GraphStore oracle_store() {
  GraphStore store;
  for (std::size_t i = 0; i < kNodes; ++i) {
    PropertyList props;
    put_property(props, store.intern_key("k"),
                 PropertyValue(static_cast<std::int64_t>(i)));
    put_property(props, store.intern_key("name"), PropertyValue(tag("n", i)));
    store.create_node({"N"}, std::move(props));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (const std::size_t j : {(i * 7 + 3) % kNodes, (i * 13 + 5) % kNodes}) {
      if (j != i) store.create_relationship(i, j, "E");
    }
  }
  return store;
}

/// Forward CSR over the store's E edges, node ids == CSR indices.
util::Csr oracle_csr(const GraphStore& store) {
  util::Csr csr;
  csr.offsets.assign(store.node_capacity() + 1, 0);
  for (RelId r = 0; r < store.rel_capacity(); ++r) {
    if (!store.rel(r).deleted) ++csr.offsets[store.rel(r).source + 1];
  }
  for (std::size_t v = 0; v < store.node_capacity(); ++v) {
    csr.offsets[v + 1] += csr.offsets[v];
  }
  csr.targets.resize(csr.offsets.back());
  csr.edge_ids.resize(csr.offsets.back());
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (RelId r = 0; r < store.rel_capacity(); ++r) {
    if (store.rel(r).deleted) continue;
    const std::uint32_t slot = cursor[store.rel(r).source]++;
    csr.targets[slot] = static_cast<std::uint32_t>(store.rel(r).target);
    csr.edge_ids[slot] = static_cast<std::uint32_t>(r);
  }
  return csr;
}

/// Node ids whose BFS hop distance from `source` lies in [min, max].
std::vector<std::int64_t> oracle_targets(const util::Csr& csr,
                                         std::uint32_t source,
                                         std::int32_t min_hops,
                                         std::int32_t max_hops) {
  const std::vector<std::int32_t> dist =
      util::bfs_distances(csr, {source});
  std::vector<std::int64_t> out;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] != util::kBfsUnreachable && dist[v] >= min_hops &&
        dist[v] <= max_hops) {
      out.push_back(static_cast<std::int64_t>(v));
    }
  }
  return out;
}

std::vector<std::int64_t> query_targets(CypherSession& session,
                                        std::size_t source,
                                        const char* hops) {
  const QueryResult result = session.run(
      "MATCH (a:N {k: " + std::to_string(source) + "})-[r:E" + hops +
      "]->(b:N) RETURN b");
  std::vector<std::int64_t> out;
  for (const auto& row : result.rows) out.push_back(row.at(0).as_int());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CypherVarLength, MatchesBfsOracleBitIdentically) {
  GraphStore store = oracle_store();
  const util::Csr csr = oracle_csr(store);
  CypherSession session(store);
  struct Bounds {
    const char* pattern;
    std::int32_t min, max;
  };
  const Bounds kBounds[] = {
      {"*1..2", 1, 2},  {"*..3", 1, 3},   {"*2..4", 2, 4},
      {"*3", 3, 3},     {"*0..1", 0, 1},  {"*", 1, INT32_MAX},
      {"*2..", 2, INT32_MAX},
  };
  for (const Bounds& b : kBounds) {
    for (std::uint32_t source = 0; source < kNodes; ++source) {
      EXPECT_EQ(query_targets(session, source, b.pattern),
                oracle_targets(csr, source, b.min, b.max))
          << "pattern " << b.pattern << " source " << source;
    }
  }
}

TEST(CypherVarLength, SingleHopAgreesWithVarLengthOne) {
  // -[:E]-> enumerates edges; -[:E*1..1]-> enumerates distance-1 pairs.
  // On a simple-digraph store the target sets coincide.
  GraphStore store = oracle_store();
  CypherSession session(store);
  for (std::uint32_t source = 0; source < kNodes; ++source) {
    std::vector<std::int64_t> single =
        query_targets(session, source, "");
    std::sort(single.begin(), single.end());
    single.erase(std::unique(single.begin(), single.end()), single.end());
    EXPECT_EQ(single, query_targets(session, source, "*1..1"))
        << "source " << source;
  }
}

TEST(CypherVarLength, CountAggregatesPairs) {
  GraphStore store = oracle_store();
  const util::Csr csr = oracle_csr(store);
  CypherSession session(store);
  const QueryResult result = session.run(
      "MATCH (a:N {k: 0})-[r:E*1..4]->(b:N) RETURN count(b)");
  EXPECT_EQ(result.count,
            static_cast<std::int64_t>(oracle_targets(csr, 0, 1, 4).size()));
}

// ---------------------------------------------------------------------------
// EXPLAIN and plan selection
// ---------------------------------------------------------------------------

GraphStore people_store() {
  GraphStore store;
  for (int i = 0; i < 8; ++i) {
    PropertyList props;
    put_property(props, store.intern_key("name"), PropertyValue(tag("u", i)));
    put_property(props, store.intern_key("age"),
                 PropertyValue(std::int64_t{20 + i}));
    store.create_node({"User"}, std::move(props));
  }
  for (int i = 0; i < 3; ++i) {
    PropertyList props;
    put_property(props, store.intern_key("name"), PropertyValue(tag("g", i)));
    store.create_node({"Group"}, std::move(props));
  }
  for (int i = 0; i < 8; ++i) {
    store.create_relationship(i, 8 + (i % 3), "MemberOf");
  }
  return store;
}

TEST(CypherExplain, IndexSeekChosenWheneverIndexExists) {
  GraphStore store = people_store();
  CypherSession session(store);
  const char* query =
      "EXPLAIN MATCH (n:User {name: 'u3'}) RETURN count(n)";
  const QueryResult before = session.run(query);
  EXPECT_NE(before.plan.find("LabelScan :User"), std::string::npos)
      << before.plan;
  EXPECT_EQ(before.plan.find("IndexSeek"), std::string::npos);

  session.run("CREATE INDEX ON :User(name)");
  const QueryResult after = session.run(query);
  EXPECT_NE(after.plan.find("IndexSeek :User(name"), std::string::npos)
      << after.plan;
}

TEST(CypherExplain, WhereEqualityUsesIndexToo) {
  GraphStore store = people_store();
  CypherSession session(store);
  session.run("CREATE INDEX ON :User(age)");
  const QueryResult result = session.run(
      "EXPLAIN MATCH (n:User) WHERE n.age = 25 RETURN count(n)");
  EXPECT_NE(result.plan.find("IndexSeek :User(age"), std::string::npos)
      << result.plan;
}

TEST(CypherExplain, DoesNotExecute) {
  GraphStore store = people_store();
  CypherSession session(store);
  const QueryResult result =
      session.run("EXPLAIN CREATE (n:User {name: 'ghost'})");
  EXPECT_FALSE(result.plan.empty());
  EXPECT_EQ(result.nodes_created, 0u);
  EXPECT_EQ(store.node_count(), 11u);  // nothing materialized
  EXPECT_EQ(session.run("MATCH (n:User {name: 'ghost'}) RETURN count(n)")
                .count,
            0);
}

TEST(CypherExplain, VarLengthRendersBfsOperator) {
  GraphStore store = people_store();
  CypherSession session(store);
  const QueryResult result = session.run(
      "EXPLAIN MATCH (u:User {name: 'u0'})-[r:MemberOf*1..3]->(g:Group) "
      "RETURN count(g)");
  EXPECT_NE(result.plan.find("ExpandVarLength"), std::string::npos)
      << result.plan;
}

// ---------------------------------------------------------------------------
// Parameters and prepared statements
// ---------------------------------------------------------------------------

TEST(CypherParams, BindAtExecutionTime) {
  GraphStore store = people_store();
  CypherSession session(store);
  const PreparedStatement stmt = session.prepare(
      "MATCH (n:User {name: $who}) RETURN count(n)");
  EXPECT_EQ(session.execute(stmt, {{"who", PropertyValue("u3")}}).count, 1);
  EXPECT_EQ(session.execute(stmt, {{"who", PropertyValue("nobody")}}).count,
            0);
}

TEST(CypherParams, MissingBindingThrows) {
  GraphStore store = people_store();
  CypherSession session(store);
  const PreparedStatement stmt = session.prepare(
      "MATCH (n:User {name: $who}) RETURN count(n)");
  try {
    session.execute(stmt);
    FAIL() << "missing binding accepted";
  } catch (const CypherError& e) {
    EXPECT_NE(std::string(e.what()).find("missing parameter $who"),
              std::string::npos);
  }
}

TEST(CypherParams, WhereAndLimitTakeParams) {
  GraphStore store = people_store();
  CypherSession session(store);
  const QueryResult result = session.run(
      "MATCH (n:User) WHERE n.age >= $min RETURN n.name LIMIT $cap",
      {{"min", PropertyValue(std::int64_t{24})},
       {"cap", PropertyValue(std::int64_t{2})}});
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST(CypherParams, WriteVerbsTakeParams) {
  GraphStore store;
  test_support::expect_store_invariants(store);
  CypherSession session(store);
  session.run("CREATE (n:User {name: $who, age: $age})",
              {{"who", PropertyValue("ALICE")},
               {"age", PropertyValue(std::int64_t{30})}});
  EXPECT_EQ(session.run("MATCH (n:User {name: 'ALICE'}) RETURN count(n)")
                .count,
            1);
  session.run("MATCH (n:User {name: $who}) SET n.age = $age",
              {{"who", PropertyValue("ALICE")},
               {"age", PropertyValue(std::int64_t{31})}});
  const PropertyValue* age = store.node_property(0, "age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->as_int(), 31);
  test_support::expect_store_invariants(store);
}

TEST(CypherPrepared, SurvivesCacheEviction) {
  GraphStore store = people_store();
  CypherSession session(store);
  const PreparedStatement stmt = session.prepare(
      "MATCH (n:User {name: $who}) RETURN count(n)");
  // Flood the cache far past capacity with distinct statement shapes.
  for (std::size_t i = 0; i < CypherSession::kPlanCacheCapacity + 16; ++i) {
    session.run("MATCH (n:User) WHERE n.age >= " + std::to_string(i) +
                " RETURN count(n)");
  }
  EXPECT_LE(session.plan_cache_size(), CypherSession::kPlanCacheCapacity);
  EXPECT_EQ(session.execute(stmt, {{"who", PropertyValue("u1")}}).count, 1);
}

TEST(CypherPrepared, ReplansAfterIndexCreation) {
  GraphStore store = people_store();
  CypherSession session(store);
  const PreparedStatement stmt = session.prepare(
      "MATCH (n:User {name: $who}) RETURN count(n)");
  session.run("CREATE INDEX ON :User(name)");
  // The handle's plan predates the index; execute() must still be correct.
  EXPECT_EQ(session.execute(stmt, {{"who", PropertyValue("u5")}}).count, 1);
  // And a fresh EXPLAIN of the same text now shows the seek.
  const QueryResult plan = session.run(
      "EXPLAIN MATCH (n:User {name: $who}) RETURN count(n)");
  EXPECT_NE(plan.plan.find("IndexSeek"), std::string::npos) << plan.plan;
}

// ---------------------------------------------------------------------------
// Plan cache accounting
// ---------------------------------------------------------------------------

TEST(CypherPlanCache, HitsOnRepeatAndOnWhitespaceVariants) {
  GraphStore store = people_store();
  CypherSession session(store);
  session.run("MATCH (n:User) RETURN count(n)");
  EXPECT_EQ(session.plan_cache_misses(), 1u);
  EXPECT_EQ(session.plan_cache_hits(), 0u);
  session.run("MATCH (n:User) RETURN count(n)");
  EXPECT_EQ(session.plan_cache_hits(), 1u);
  // Whitespace and a trailing semicolon normalize onto the same entry.
  session.run("MATCH  (n:User)\n  RETURN   count(n) ;");
  EXPECT_EQ(session.plan_cache_hits(), 2u);
  EXPECT_EQ(session.plan_cache_misses(), 1u);
  EXPECT_EQ(session.plan_cache_size(), 1u);
}

TEST(CypherPlanCache, StringLiteralsKeepTheirSpaces) {
  GraphStore store;
  CypherSession session(store);
  session.run("CREATE (n:T {name: 'a b'})");
  session.run("CREATE (n:T {name: 'a  b'})");  // distinct literal
  EXPECT_EQ(session.plan_cache_misses(), 2u);
  EXPECT_EQ(session.plan_cache_hits(), 0u);
  EXPECT_EQ(session.run("MATCH (n:T {name: 'a  b'}) RETURN count(n)").count,
            1);
}

TEST(CypherPlanCache, ParseFailuresAreNotCached) {
  GraphStore store;
  CypherSession session(store);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(session.run("MATCH (n:User) RETURN"), CypherError);
  }
  EXPECT_EQ(session.plan_cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// WHERE / projections / LIMIT
// ---------------------------------------------------------------------------

TEST(CypherRead, ProjectionsFillColumnsAndRows) {
  GraphStore store = people_store();
  CypherSession session(store);
  const QueryResult result = session.run(
      "MATCH (n:User) WHERE n.age >= 24 AND n.age < 26 "
      "RETURN n.name, n.age");
  ASSERT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.columns[0], "n.name");
  EXPECT_EQ(result.columns[1], "n.age");
  ASSERT_EQ(result.rows.size(), 2u);  // ages 24, 25
  for (const auto& row : result.rows) {
    EXPECT_TRUE(row[0].is_string());
    EXPECT_TRUE(row[1].is_int());
  }
}

TEST(CypherRead, MissingPropertyProjectsNull) {
  GraphStore store;
  store.create_node({"T"});
  CypherSession session(store);
  const QueryResult result = session.run("MATCH (n:T) RETURN n.ghost");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST(CypherRead, ComparisonOperators) {
  GraphStore store = people_store();  // ages 20..27
  CypherSession session(store);
  auto count = [&](const char* where) {
    return session
        .run(std::string("MATCH (n:User) WHERE ") + where +
             " RETURN count(n)")
        .count;
  };
  EXPECT_EQ(count("n.age = 20"), 1);
  EXPECT_EQ(count("n.age <> 20"), 7);
  EXPECT_EQ(count("n.age < 22"), 2);
  EXPECT_EQ(count("n.age <= 22"), 3);
  EXPECT_EQ(count("n.age > 25"), 2);
  EXPECT_EQ(count("n.age >= 25"), 3);
  EXPECT_EQ(count("n.name >= 'u6'"), 2);  // lexicographic strings
  EXPECT_EQ(count("n.age = 'u6'"), 0);    // cross-type eq never matches
}

TEST(CypherRead, LimitTruncatesRows) {
  GraphStore store = people_store();
  CypherSession session(store);
  EXPECT_EQ(session.run("MATCH (n:User) RETURN n LIMIT 3").rows.size(), 3u);
  EXPECT_EQ(session.run("MATCH (n:User) RETURN n LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(session.run("MATCH (n:User) RETURN n LIMIT 99").rows.size(), 8u);
}

TEST(CypherRead, TwoHopFixedPattern) {
  GraphStore store;
  const NodeId u = store.create_node({"User"});
  const NodeId g1 = store.create_node({"Group"});
  const NodeId g2 = store.create_node({"Group"});
  store.create_relationship(u, g1, "MemberOf");
  store.create_relationship(g1, g2, "MemberOf");
  CypherSession session(store);
  const QueryResult result = session.run(
      "MATCH (u:User)-[a:MemberOf]->(g:Group)-[b:MemberOf]->(h:Group) "
      "RETURN count(h)");
  EXPECT_EQ(result.count, 1);
}

}  // namespace
}  // namespace adsynth::graphdb
