#include "graphdb/persist.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "adcore/convert.hpp"
#include "core/generator.hpp"
#include "support/checked_store.hpp"
#include "util/binio.hpp"

namespace adsynth::graphdb {
namespace {

namespace fs = std::filesystem;
using test_support::expect_store_invariants;
using test_support::tag;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::uint32_t read_u32(const std::string& bytes, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

std::uint64_t read_u64(const std::string& bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[offset + i]);
  }
  return v;
}

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = ::testing::TempDir() + "/persist_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::create_directories(dir);
  }

  std::string path(const char* name) const { return dir + "/" + name; }

  std::string dir;
};

/// A store exercising every persisted feature: multiple labels, properties
/// of every value type, an index, tombstoned nodes and rels.
GraphStore build_mixed_store() {
  GraphStore store;
  store.create_index("User", "name");
  std::vector<NodeId> users;
  for (int i = 0; i < 40; ++i) {
    const NodeId u = store.create_node({"User"});
    store.set_node_property(u, "name", PropertyValue(tag("user", i)));
    store.set_node_property(u, "enabled", PropertyValue(i % 3 != 0));
    store.set_node_property(u, "logons",
                            PropertyValue(static_cast<std::int64_t>(i)));
    store.set_node_property(u, "score", PropertyValue(0.25 * i));
    users.push_back(u);
  }
  const NodeId group = store.create_node({"Group", "Builtin"});
  store.set_node_property(group, "name", PropertyValue("Domain Admins"));
  store.set_node_property(
      group, "tags",
      PropertyValue(std::vector<std::string>{"tier0", "admin"}));
  for (int i = 0; i < 40; ++i) {
    store.create_relationship(users[i], group, "MemberOf", {});
  }
  PropertyList owns;
  put_property(owns, store.intern_key("violation"), PropertyValue(true));
  const RelId doomed =
      store.create_relationship(group, users[0], "Owns", std::move(owns));
  store.delete_relationship(doomed);
  store.delete_node(users[39], /*detach=*/true);
  store.set_node_property(users[1], "name", PropertyValue(std::string("u1")));
  return store;
}

TEST_F(PersistTest, RoundTripFingerprintIdentityAcrossPresets) {
  const struct {
    const char* name;
    core::GeneratorConfig cfg;
  } presets[] = {
      {"secure", core::GeneratorConfig::secure(1500, 31)},
      {"vulnerable", core::GeneratorConfig::vulnerable(1500, 32)},
      {"highly_secure", core::GeneratorConfig::highly_secure(1500, 33)},
  };
  for (const auto& preset : presets) {
    const auto ad = core::generate_ad(preset.cfg);
    const GraphStore store = adcore::to_store(ad.graph);
    const std::string file = path(preset.name);
    persist::save_snapshot(store, file, 7);

    persist::SnapshotInfo info;
    const GraphStore loaded = persist::load_snapshot(file, &info);
    EXPECT_EQ(persist::fingerprint(loaded), persist::fingerprint(store))
        << preset.name;
    EXPECT_EQ(loaded.node_count(), store.node_count()) << preset.name;
    EXPECT_EQ(loaded.rel_count(), store.rel_count()) << preset.name;
    EXPECT_EQ(info.checkpoint_id, 7u);
    EXPECT_EQ(info.format_version, persist::kSnapshotFormatVersion);
    expect_store_invariants(loaded);
  }
}

TEST_F(PersistTest, RoundTripPreservesTombstonesIndexesAndValueTypes) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("mixed"));
  const GraphStore loaded = persist::load_snapshot(path("mixed"));

  EXPECT_EQ(persist::fingerprint(loaded), persist::fingerprint(store));
  EXPECT_EQ(loaded.node_count(), store.node_count());
  EXPECT_EQ(loaded.rel_count(), store.rel_count());
  // The index came back queryable, including the post-index rewrite.
  EXPECT_EQ(loaded.find_nodes("User", "name", PropertyValue(tag("user", 5)))
                .size(),
            1u);
  EXPECT_EQ(
      loaded.find_nodes("User", "name", PropertyValue(std::string("u1")))
          .size(),
      1u);
  expect_store_invariants(loaded);
}

TEST_F(PersistTest, EmptyStoreRoundTrips) {
  const GraphStore store;
  persist::save_snapshot(store, path("empty"));
  const GraphStore loaded = persist::load_snapshot(path("empty"));
  EXPECT_EQ(persist::fingerprint(loaded), persist::fingerprint(store));
  EXPECT_EQ(loaded.node_count(), 0u);
  expect_store_invariants(loaded);
}

TEST_F(PersistTest, SaveInsideUndoScopeThrows) {
  GraphStore store = build_mixed_store();
  store.begin_undo_scope();
  EXPECT_THROW(persist::save_snapshot(store, path("open")),
               std::logic_error);
  store.abort_scope();
}

TEST_F(PersistTest, SaveIsDeterministic) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("a"), 3);
  persist::save_snapshot(store, path("b"), 3);
  EXPECT_EQ(read_file(path("a")), read_file(path("b")));
}

TEST_F(PersistTest, TruncatedFileFailsInHeader) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("snap"));
  write_file(path("snap"), read_file(path("snap")).substr(0, 8));
  try {
    persist::load_snapshot(path("snap"));
    FAIL() << "expected PersistError";
  } catch (const persist::PersistError& err) {
    EXPECT_EQ(err.section(), "header");
  }
}

TEST_F(PersistTest, BadMagicFailsInHeader) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("snap"));
  std::string bytes = read_file(path("snap"));
  bytes[0] = 'X';
  write_file(path("snap"), bytes);
  try {
    persist::load_snapshot(path("snap"));
    FAIL() << "expected PersistError";
  } catch (const persist::PersistError& err) {
    EXPECT_EQ(err.section(), "header");
  }
}

TEST_F(PersistTest, FutureFormatVersionFailsLoudly) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("snap"));
  std::string bytes = read_file(path("snap"));
  // Bump the version field and re-seal the header CRC so the version check
  // itself (not the checksum) is what rejects the file.
  bytes[4] = static_cast<char>(persist::kSnapshotFormatVersion + 1);
  const std::uint32_t crc = util::crc32(bytes.data(), 12);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  write_file(path("snap"), bytes);
  try {
    persist::load_snapshot(path("snap"));
    FAIL() << "expected PersistError";
  } catch (const persist::PersistError& err) {
    EXPECT_EQ(err.section(), "header");
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
  }
}

TEST_F(PersistTest, EverySectionCorruptionIsNamed) {
  const GraphStore store = build_mixed_store();
  persist::save_snapshot(store, path("snap"));
  const std::string pristine = read_file(path("snap"));

  // Walk the section table (16-byte header, 24-byte entries) and flip one
  // byte inside each section's payload; the error must name that section.
  const std::uint32_t section_count = read_u32(pristine, 8);
  ASSERT_EQ(section_count, 7u);
  const char* names[] = {"",     "meta",          "tokens",  "nodes",
                         "rels", "adjacency",     "label_buckets",
                         "indexes"};
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t entry = 16 + i * 24;
    const std::uint32_t id = read_u32(pristine, entry);
    const std::uint64_t offset = read_u64(pristine, entry + 4);
    const std::uint64_t length = read_u64(pristine, entry + 12);
    ASSERT_GE(id, 1u);
    ASSERT_LE(id, 7u);
    ASSERT_GT(length, 0u) << names[id];

    std::string bytes = pristine;
    bytes[offset + length / 2] ^= 0x40;
    write_file(path("snap"), bytes);
    try {
      persist::load_snapshot(path("snap"));
      FAIL() << "corrupt " << names[id] << " loaded silently";
    } catch (const persist::PersistError& err) {
      EXPECT_EQ(err.section(), names[id]) << err.what();
    }
  }

  // And the pristine bytes still load — the corruption harness itself is
  // not what was failing.
  write_file(path("snap"), pristine);
  const GraphStore loaded = persist::load_snapshot(path("snap"));
  EXPECT_EQ(persist::fingerprint(loaded), persist::fingerprint(store));
}

TEST_F(PersistTest, MissingFileThrowsBinIoError) {
  EXPECT_THROW(persist::load_snapshot(path("nope")), util::BinIoError);
}

}  // namespace
}  // namespace adsynth::graphdb
