// Epoch-based MVCC snapshots: isolation, publish/abort semantics, the
// delta-chain + re-root lifecycle, read-path equality with the live store,
// and epoch reclamation accounting.
//
// The concurrency half (many readers vs one committing writer, TSan lane)
// lives in snapshot_concurrency_test.cpp; this file proves the semantics
// single-threaded so those failures stay easy to bisect.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adcore/convert.hpp"
#include "graphdb/cypher.hpp"
#include "graphdb/snapshot.hpp"
#include "graphdb/store.hpp"
#include "support/checked_store.hpp"

namespace adsynth::graphdb {
namespace {

using test_support::expect_store_invariants;

/// A store with an indexed User population and one Group.
struct Fixture {
  GraphStore store;
  NodeId alice = kNoNode;
  NodeId bob = kNoNode;
  NodeId admins = kNoNode;

  Fixture() {
    store.create_index("User", "name");
    alice = store.create_node(
        {"User"}, {{store.intern_key("name"), PropertyValue("alice")}});
    bob = store.create_node(
        {"User"}, {{store.intern_key("name"), PropertyValue("bob")}});
    admins = store.create_node(
        {"Group"}, {{store.intern_key("name"), PropertyValue("admins")}});
    store.create_relationship(alice, admins, "MemberOf");
  }
};

TEST(Snapshot, FreezesCommittedStateAcrossScopedCommits) {
  Fixture f;
  const Snapshot before = f.store.snapshot();
  EXPECT_EQ(before->node_count(), 3u);
  EXPECT_EQ(before->rel_count(), 1u);

  f.store.begin_undo_scope();
  const NodeId carol = f.store.create_node(
      {"User"}, {{f.store.intern_key("name"), PropertyValue("carol")}});
  f.store.set_node_property(f.alice, "name", PropertyValue("ALICE"));
  f.store.commit_scope();

  // The old view answers from its epoch; a fresh one sees the commit.
  EXPECT_EQ(before->node_count(), 3u);
  ASSERT_NE(before->node_property(f.alice, "name"), nullptr);
  EXPECT_EQ(before->node_property(f.alice, "name")->as_string(), "alice");
  EXPECT_EQ(before->find_nodes("User", "name", PropertyValue("carol")),
            std::vector<NodeId>{});

  const Snapshot after = f.store.snapshot();
  EXPECT_GT(after->epoch(), before->epoch());
  EXPECT_EQ(after->node_count(), 4u);
  EXPECT_EQ(after->node_property(f.alice, "name")->as_string(), "ALICE");
  EXPECT_EQ(after->find_nodes("User", "name", PropertyValue("carol")),
            std::vector<NodeId>{carol});
  expect_store_invariants(f.store);
}

TEST(Snapshot, AbortedScopePublishesNothing) {
  Fixture f;
  const Snapshot before = f.store.snapshot();
  const SnapshotStats stats_before = f.store.snapshot_stats();

  f.store.begin_undo_scope();
  f.store.create_node({"User"});
  f.store.set_node_property(f.bob, "name", PropertyValue("BOB"));
  f.store.abort_scope();

  // Same view, same epoch: an abort is not a commit, and the restored
  // stamps keep the version-chain audit green.
  const Snapshot again = f.store.snapshot();
  EXPECT_EQ(again.get(), before.get());
  EXPECT_EQ(f.store.snapshot_stats().current_epoch,
            stats_before.current_epoch);
  expect_store_invariants(f.store);
}

TEST(Snapshot, EmptyCommitPublishesNothing) {
  Fixture f;
  const Snapshot before = f.store.snapshot();
  f.store.begin_undo_scope();
  f.store.commit_scope();
  EXPECT_EQ(f.store.snapshot().get(), before.get());
}

TEST(Snapshot, UnscopedMutationInvalidatesAndReRoots) {
  Fixture f;
  const Snapshot before = f.store.snapshot();
  const std::uint64_t epoch_before = before->epoch();

  // Unscoped writes have no undo log to derive a delta from: the published
  // view is dropped and the next snapshot() re-materializes a fresh root.
  const NodeId dave = f.store.create_node(
      {"User"}, {{f.store.intern_key("name"), PropertyValue("dave")}});

  const Snapshot after = f.store.snapshot();
  EXPECT_NE(after.get(), before.get());
  EXPECT_GT(after->epoch(), epoch_before);
  EXPECT_EQ(after->overlay_entries(), 0u);  // fresh root, no overlay
  EXPECT_EQ(after->find_nodes("User", "name", PropertyValue("dave")),
            std::vector<NodeId>{dave});
  EXPECT_EQ(before->node_count(), 3u);  // the old view stays coherent
  expect_store_invariants(f.store);
}

TEST(Snapshot, DeltaChainAccumulatesThenReRoots) {
  Fixture f;
  const Snapshot root = f.store.snapshot();
  EXPECT_EQ(root->overlay_entries(), 0u);

  // Small commits ride the delta chain: each publish copies the overlay
  // forward instead of re-materializing O(V+E) state.
  f.store.begin_undo_scope();
  f.store.create_node({"User"});
  f.store.commit_scope();
  f.store.begin_undo_scope();
  f.store.set_node_property(f.bob, "name", PropertyValue("robert"));
  f.store.commit_scope();
  const Snapshot delta = f.store.snapshot();
  EXPECT_EQ(delta->overlay_entries(), 2u);  // one created + one mutated node
  EXPECT_EQ(delta->node_property(f.bob, "name")->as_string(), "robert");

  // A batch pushing the overlay past the re-root threshold compacts back
  // to a fresh root.
  f.store.begin_undo_scope();
  for (int i = 0; i < 100; ++i) f.store.create_node({"User"});
  f.store.commit_scope();
  const Snapshot rerooted = f.store.snapshot();
  EXPECT_EQ(rerooted->overlay_entries(), 0u);
  EXPECT_EQ(rerooted->node_count(), f.store.node_count());
  EXPECT_EQ(delta->overlay_entries(), 2u);  // the old delta view is frozen
  expect_store_invariants(f.store);
}

TEST(Snapshot, MirrorsStoreReadApi) {
  Fixture f;
  // Mutate through a few committed batches so the view under test is a
  // delta view (the interesting path), then compare every mirrored read.
  f.store.snapshot();
  f.store.begin_undo_scope();
  const NodeId carol = f.store.create_node(
      {"User"}, {{f.store.intern_key("name"), PropertyValue("bob")}});
  f.store.create_relationship(carol, f.admins, "MemberOf");
  f.store.delete_relationship(0);
  f.store.commit_scope();

  const GraphStore& s = f.store;
  const Snapshot snap = f.store.snapshot();
  const SnapshotView& v = *snap;
  EXPECT_EQ(v.node_count(), s.node_count());
  EXPECT_EQ(v.rel_count(), s.rel_count());
  EXPECT_EQ(v.node_capacity(), s.node_capacity());
  EXPECT_EQ(v.rel_capacity(), s.rel_capacity());
  EXPECT_EQ(v.find_label("User"), s.find_label("User"));
  EXPECT_EQ(v.find_rel_type("MemberOf"), s.find_rel_type("MemberOf"));
  EXPECT_EQ(v.find_key("name"), s.find_key("name"));
  EXPECT_EQ(v.rel_type_count(), s.rel_type_count());
  EXPECT_EQ(v.label_name(*v.find_label("Group")), "Group");
  EXPECT_EQ(v.nodes_with_label("User"), s.nodes_with_label("User"));
  EXPECT_EQ(v.nodes_with_label("Group"), s.nodes_with_label("Group"));
  // Indexed lookup with a duplicated value (bob and carol share the name)
  // plus the unindexed label-scan fallback.
  EXPECT_EQ(v.find_nodes("User", "name", PropertyValue("bob")),
            s.find_nodes("User", "name", PropertyValue("bob")));
  EXPECT_EQ(v.find_nodes("Group", "name", PropertyValue("admins")),
            s.find_nodes("Group", "name", PropertyValue("admins")));
  for (NodeId n = 0; n < s.node_capacity(); ++n) {
    EXPECT_EQ(v.node(n).deleted, s.node(n).deleted);
    EXPECT_EQ(v.node(n).out_rels, s.node(n).out_rels);
    EXPECT_EQ(v.node(n).in_rels, s.node(n).in_rels);
  }
  for (RelId r = 0; r < s.rel_capacity(); ++r) {
    EXPECT_EQ(v.rel(r).deleted, s.rel(r).deleted);
    EXPECT_EQ(v.rel(r).source, s.rel(r).source);
    EXPECT_EQ(v.rel(r).target, s.rel(r).target);
  }
}

TEST(Snapshot, ReadQueriesMatchLiveSession) {
  Fixture f;
  CypherSession session(f.store);
  const PreparedStatement count_users =
      session.prepare("MATCH (n:User) RETURN count(n)");
  const PreparedStatement by_name =
      session.prepare("MATCH (n:User {name: $name}) RETURN n");

  const Snapshot snap = f.store.snapshot();
  const Params params{{"name", PropertyValue("alice")}};
  EXPECT_EQ(CypherSession::execute_read(snap, count_users).count,
            session.execute(count_users).count);
  EXPECT_EQ(CypherSession::execute_read(snap, by_name, params).nodes,
            session.execute(by_name, params).nodes);

  // The writer moves on; the snapshot keeps answering from its epoch.
  session.run("CREATE (n:User {name: 'eve'})");
  EXPECT_EQ(CypherSession::execute_read(snap, count_users).count, 2);
  EXPECT_EQ(session.execute(count_users).count, 3);
}

TEST(Snapshot, ReadPathIsReadOnly) {
  Fixture f;
  CypherSession session(f.store);
  const Snapshot snap = f.store.snapshot();
  const PreparedStatement create =
      session.prepare("CREATE (n:User {name: 'mallory'})");
  EXPECT_THROW(CypherSession::execute_read(snap, create), CypherError);
  EXPECT_THROW(CypherSession::execute_read(snap, nullptr), CypherError);
  EXPECT_THROW(CypherSession::execute_read(Snapshot{}, create), CypherError);

  // EXPLAIN of any verb is fine — it renders the plan without executing.
  const PreparedStatement explain =
      session.prepare("EXPLAIN CREATE (n:User {name: 'mallory'})");
  EXPECT_FALSE(CypherSession::execute_read(snap, explain).plan.empty());
  EXPECT_EQ(f.store.node_count(), 3u);
}

TEST(Snapshot, MidScopeMaterializationThrowsButFastPathServes) {
  Fixture f;
  // No published view yet: snapshot() inside a scope would materialize
  // uncommitted state, so it must refuse.
  f.store.begin_undo_scope();
  EXPECT_THROW(f.store.snapshot(), std::logic_error);
  f.store.abort_scope();

  // With a published view, mid-scope snapshot() is the lock-free fast path
  // and serves the last committed epoch.
  const Snapshot published = f.store.snapshot();
  f.store.begin_undo_scope();
  f.store.create_node({"User"});
  EXPECT_EQ(f.store.snapshot().get(), published.get());
  f.store.abort_scope();
}

TEST(Snapshot, ReclamationAccounting) {
  Fixture f;
  SnapshotStats stats = f.store.snapshot_stats();
  EXPECT_EQ(stats.published_views, 0u);
  EXPECT_EQ(stats.live_views, 0u);

  {
    const Snapshot s1 = f.store.snapshot();
    f.store.begin_undo_scope();
    f.store.create_node({"User"});
    f.store.commit_scope();
    const Snapshot s2 = f.store.snapshot();
    stats = f.store.snapshot_stats();
    EXPECT_EQ(stats.published_views, 2u);
    EXPECT_EQ(stats.live_views, 2u);
    EXPECT_EQ(stats.oldest_live_epoch, s1->epoch());
    EXPECT_EQ(stats.current_epoch, s2->epoch());
  }
  // Handles dropped: the retired epoch drains (its view is reclaimed); the
  // current epoch stays alive through the store's published tail.
  stats = f.store.snapshot_stats();
  EXPECT_EQ(stats.reclaimed_views, 1u);
  EXPECT_EQ(stats.live_views, 1u);
  EXPECT_EQ(stats.oldest_live_epoch, stats.current_epoch);

  // Invalidation drops the tail too: nothing stays pinned.
  f.store.create_node({"User"});  // unscoped
  stats = f.store.snapshot_stats();
  EXPECT_EQ(stats.reclaimed_views, 2u);
  EXPECT_EQ(stats.live_views, 0u);
  EXPECT_EQ(stats.oldest_live_epoch, 0u);
  expect_store_invariants(f.store);
}

TEST(Snapshot, ViewsOutliveTheStore) {
  Snapshot survivor;
  {
    Fixture f;
    f.store.snapshot();
    f.store.begin_undo_scope();
    f.store.create_node({"User"});
    f.store.commit_scope();
    survivor = f.store.snapshot();
  }
  // The store is gone; the view still answers, and its destructor must
  // deregister against the control block without touching the dead store.
  EXPECT_EQ(survivor->node_count(), 4u);
  EXPECT_EQ(survivor->nodes_with_label("User").size(), 3u);
  survivor.reset();
}

TEST(Snapshot, FromSnapshotMatchesFromStore) {
  // An AD-shaped store (recognized labels only), converted both ways.
  GraphStore store;
  const NodeId da = store.create_node(
      {"Group"}, {{store.intern_key("name"), PropertyValue("DOMAIN ADMINS")}});
  const NodeId u = store.create_node(
      {"User"}, {{store.intern_key("name"), PropertyValue("U1")},
                 {store.intern_key("enabled"), PropertyValue(true)},
                 {store.intern_key("admin"), PropertyValue(false)}});
  const NodeId c = store.create_node(
      {"Computer"}, {{store.intern_key("name"), PropertyValue("C1")},
                     {store.intern_key("tier"), PropertyValue(
                                                    std::int64_t{2})}});
  store.create_relationship(u, c, "AdminTo");
  store.create_relationship(c, da, "MemberOf");

  const Snapshot snap = store.snapshot();
  store.delete_relationship(1);  // writer moves on past the snapshot

  const adcore::AttackGraph from_live = adcore::from_store(store);
  const adcore::AttackGraph from_view = adcore::from_snapshot(*snap);
  EXPECT_EQ(from_view.node_count(), 3u);
  EXPECT_EQ(from_view.edge_count(), 2u);  // snapshot predates the delete
  EXPECT_EQ(from_live.edge_count(), 1u);
  EXPECT_EQ(from_view.domain_admins(), 0u);
  for (adcore::NodeIndex n = 0; n < from_view.node_count(); ++n) {
    EXPECT_EQ(from_view.kind(n), from_live.kind(n));
    EXPECT_EQ(from_view.name(n), from_live.name(n));
    EXPECT_EQ(from_view.tier(n), from_live.tier(n));
    EXPECT_EQ(from_view.flags(n), from_live.flags(n));
  }
}

}  // namespace
}  // namespace adsynth::graphdb
