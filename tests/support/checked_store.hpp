// Test-fixture glue for GraphStore::check_invariants().
//
// Suites that mutate a GraphStore derive from StoreInvariantTest (or call
// expect_store_invariants directly): the fixture audits the store at
// TearDown, so every test in the suite doubles as an invariant oracle run —
// a test can pass its own assertions and still fail if it left the store
// internally inconsistent.  Tests that intentionally finish with an open
// undo scope clear `require_at_rest_`.
#pragma once

#include <string>

#include <gtest/gtest.h>

#include "graphdb/store.hpp"

namespace adsynth::test_support {

/// Builds "prefix<i>" via append instead of operator+(const char*,
/// std::string&&): GCC 12's -Wrestrict misfires on the rvalue overload
/// (GCC PR 105329) at whichever call sites its inliner picks, so tests
/// use this helper to stay -Werror clean across all build lanes.
inline std::string tag(const char* prefix, long long i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

inline void expect_store_invariants(const graphdb::GraphStore& store,
                                    bool require_at_rest = true) {
  const auto report = store.check_invariants(require_at_rest);
  for (const auto& violation : report.violations) {
    ADD_FAILURE() << "store invariant violated: " << violation;
  }
}

class StoreInvariantTest : public ::testing::Test {
 protected:
  graphdb::GraphStore store;
  bool require_at_rest_ = true;

  void TearDown() override {
    expect_store_invariants(store, require_at_rest_);
  }
};

}  // namespace adsynth::test_support
