// Crash-recovery corruption matrix — the CI `persistence.recovery` stage.
//
// Builds a real durability directory (snapshot + WAL) from a generated AD
// store, then damages it the way real crashes and bit rot do, one case per
// run:
//
//   truncated-snapshot    snapshot cut mid-file           -> loud PersistError
//   bitflip-section       one flipped byte in a section   -> error names it
//   stale-format-version  header claims a future format   -> loud, mentions it
//   torn-wal-tail         crash mid-commit-record         -> recover to the
//                                                            previous commit
//
// The snapshot cases additionally verify that restoring the pristine bytes
// recovers the exact pre-corruption fingerprint (corruption detection must
// not depend on one-way state), and every recovered store has to pass
// check_invariants().  Exit 0 iff all cases pass; one [PASS]/[FAIL] line
// per case for the CI log.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "adcore/convert.hpp"
#include "core/generator.hpp"
#include "graphdb/persist.hpp"
#include "graphdb/store.hpp"
#include "util/binio.hpp"

namespace {

namespace fs = std::filesystem;
using namespace adsynth;
using graphdb::GraphStore;
namespace persist = graphdb::persist;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw std::runtime_error("cannot read " + path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) throw std::runtime_error("cannot write " + path);
}

void require(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error(what);
}

void require_invariants(const GraphStore& store) {
  const auto report = store.check_invariants();
  require(report.ok(), report.ok() ? ""
                                   : "invariant violation after recovery: " +
                                         report.violations.front());
}

/// Fresh durability dir under `root` holding a generated store (as the
/// checkpoint snapshot) plus a few WAL transactions on top.  Returns the
/// fingerprints the corruption cases assert against.
struct Scenario {
  std::string dir;
  std::uint64_t fp_full = 0;       // snapshot + all WAL transactions
  std::uint64_t fp_pre_tail = 0;   // everything except the last transaction
  std::uintmax_t tail_offset = 0;  // WAL byte offset of the last record
};

Scenario build_scenario(const std::string& root, const char* name) {
  Scenario sc;
  sc.dir = root + "/" + name;
  fs::remove_all(sc.dir);

  persist::Durability dur(sc.dir);
  GraphStore store = dur.recover();
  {
    const auto ad = core::generate_ad(core::GeneratorConfig::secure(3000, 41));
    GraphStore generated = adcore::to_store(ad.graph);
    dur.checkpoint(generated);  // baseline snapshot from the generated store
    store = dur.recover();
    dur.attach(store);
  }
  for (int round = 0; round < 6; ++round) {
    store.begin_undo_scope();
    const graphdb::NodeId u = store.create_node({"User"});
    store.set_node_property(
        u, "name",
        graphdb::PropertyValue("recovery-user-" + std::to_string(round)));
    const graphdb::NodeId g = store.create_node({"Group"});
    store.create_relationship(u, g, "MemberOf", {});
    store.commit_scope();
    dur.sync();
    if (round == 4) {
      sc.fp_pre_tail = persist::fingerprint(store);
      sc.tail_offset = fs::file_size(dur.wal_path());
    }
  }
  sc.fp_full = persist::fingerprint(store);
  return sc;
}

using Case = std::function<void(const std::string& root)>;

void case_truncated_snapshot(const std::string& root) {
  const Scenario sc = build_scenario(root, "truncated-snapshot");
  const std::string snap = sc.dir + "/snapshot.adsg";
  const std::string pristine = read_file(snap);
  write_file(snap, pristine.substr(0, pristine.size() * 3 / 5));

  persist::Durability dur(sc.dir);
  try {
    (void)dur.recover();
    throw std::runtime_error("truncated snapshot recovered silently");
  } catch (const persist::PersistError& err) {
    std::printf("    rejected: %s\n", err.what());
    require(!err.section().empty(), "PersistError carries no section name");
  }
  // Operator restores the snapshot from backup: recovery must then land on
  // the full pre-crash state (snapshot + the untouched WAL).
  write_file(snap, pristine);
  const GraphStore recovered = dur.recover();
  require(persist::fingerprint(recovered) == sc.fp_full,
          "fingerprint diverged after restoring the pristine snapshot");
  require_invariants(recovered);
}

void case_bitflip_section(const std::string& root) {
  const Scenario sc = build_scenario(root, "bitflip-section");
  const std::string snap = sc.dir + "/snapshot.adsg";
  const std::string pristine = read_file(snap);
  // Flip one bit somewhere in the middle of the file — far past the header,
  // inside some section's payload; the per-section CRC must name it.
  std::string bytes = pristine;
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(snap, bytes);

  persist::Durability dur(sc.dir);
  try {
    (void)dur.recover();
    throw std::runtime_error("bit-flipped snapshot recovered silently");
  } catch (const persist::PersistError& err) {
    std::printf("    rejected: %s\n", err.what());
    require(!err.section().empty() && err.section() != "header",
            "flip inside a payload should name a section, got '" +
                err.section() + "'");
  }
  write_file(snap, pristine);
  const GraphStore recovered = dur.recover();
  require(persist::fingerprint(recovered) == sc.fp_full,
          "fingerprint diverged after restoring the pristine snapshot");
  require_invariants(recovered);
}

void case_stale_format_version(const std::string& root) {
  const Scenario sc = build_scenario(root, "stale-format-version");
  const std::string snap = sc.dir + "/snapshot.adsg";
  std::string bytes = read_file(snap);
  // Claim a future format and re-seal the header CRC, so the version check
  // itself (not the checksum) must reject the file.
  bytes[4] = static_cast<char>(persist::kSnapshotFormatVersion + 9);
  const std::uint32_t crc = util::crc32(bytes.data(), 12);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  write_file(snap, bytes);

  persist::Durability dur(sc.dir);
  try {
    (void)dur.recover();
    throw std::runtime_error("future-format snapshot recovered silently");
  } catch (const persist::PersistError& err) {
    std::printf("    rejected: %s\n", err.what());
    require(err.section() == "header",
            "version mismatch should fail in the header, got '" +
                err.section() + "'");
    require(std::string(err.what()).find("version") != std::string::npos,
            "error does not mention the format version");
  }
}

void case_torn_wal_tail(const std::string& root) {
  const Scenario sc = build_scenario(root, "torn-wal-tail");
  const std::string wal = sc.dir + "/wal.adwl";
  std::string bytes = read_file(wal);
  require(bytes.size() > sc.tail_offset, "scenario produced no tail record");
  bytes[sc.tail_offset + 8] ^= 0x01;  // torn write inside the last commit
  write_file(wal, bytes);

  persist::Durability dur(sc.dir);
  persist::RecoveryReport report;
  const GraphStore recovered = dur.recover(&report);
  std::printf("    %s", report.detail.c_str());
  require(report.wal_tail_truncated, "torn tail was not detected");
  require(report.wal_valid_bytes == sc.tail_offset,
          "truncation boundary is not the last commit");
  require(persist::fingerprint(recovered) == sc.fp_pre_tail,
          "recovered state is not the pre-tail commit");
  require(fs::file_size(wal) == sc.tail_offset,
          "WAL file was not truncated in place");
  require_invariants(recovered);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = fs::temp_directory_path().string() + "/adsynth_recovery";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--dir <workdir>]\n", argv[0]);
      return 2;
    }
  }
  fs::create_directories(root);

  const std::vector<std::pair<const char*, Case>> cases = {
      {"truncated-snapshot", case_truncated_snapshot},
      {"bitflip-section", case_bitflip_section},
      {"stale-format-version", case_stale_format_version},
      {"torn-wal-tail", case_torn_wal_tail},
  };

  int failed = 0;
  for (const auto& [name, fn] : cases) {
    std::printf("==> %s\n", name);
    try {
      fn(root);
      std::printf("[PASS] %s\n", name);
    } catch (const std::exception& err) {
      std::printf("[FAIL] %s: %s\n", name, err.what());
      ++failed;
    }
  }
  std::printf("recovery_check: %zu/%zu cases passed\n", cases.size() - failed,
              cases.size());
  return failed == 0 ? 0 : 1;
}
