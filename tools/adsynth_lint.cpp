// adsynth_lint v2 — token-aware concurrency-discipline & determinism lint
// for the ADSynth tree.
//
// The reproduction's headline guarantees are *determinism* and *data-race
// freedom*: identical seeds produce identical graphs, parallel reductions
// are bit-identical at any thread count, rollback restores stores exactly,
// and the MVCC snapshot layer serves lock-free readers against a single
// writer.  Those guarantees die quietly when someone reaches for
// std::rand, seeds from random_device, renders a wall-clock timestamp
// into an output file, grabs a raw std::mutex the thread-safety analysis
// cannot see through, or leaves an atomic operation's memory ordering to
// the seq_cst default nobody audited.  This tool walks src/ and bench/
// and fails (as a tier-1 ctest) on exactly those patterns.
//
// v2 architecture (DESIGN.md §3e):
//
//   pass 1  lex     — a real C++-aware lexer strips //, /*...*/ comments,
//                     "..." strings, R"(...)"-style raw strings, char
//                     literals and #include header-names into a token
//                     stream, so prose and string payloads can never fire
//                     a rule and identifiers match on exact token
//                     boundaries (steady_clockwork is not steady_clock).
//                     Comments are still *read*: they carry the inline
//                     suppression directives.
//   pass 2  rules   — pluggable rule families scan the token stream:
//
//     nondeterministic-random  std::rand / srand / random_device /
//                              mt19937 / <random> distributions /
//                              std::shuffle outside src/util/rng.*
//     wall-clock               system_clock / steady_clock / time() /
//                              gettimeofday / localtime / strftime
//                              outside src/util/timer.*
//     monotonic-clock          direct steady_clock::now() outside
//                              src/util/timer.* — monotonic reads flow
//                              through util::monotonic_ns()
//     unordered-container      unordered_map/set in src/analytics/ or
//                              src/defense/ (iteration order is
//                              implementation-defined)
//     include-hygiene          every header carries #pragma once; no
//                              `using namespace` in headers
//     atomic-ordering          every std::atomic load/store/RMW in
//                              src/graphdb/ and src/util/ must spell an
//                              explicit memory_order argument — the
//                              seq_cst default is almost never the
//                              audited intent
//     atomic-relaxed           memory_order_relaxed is only legal on the
//                              allowlisted counter fast paths
//                              (util/metrics, util/trace — entries in
//                              tools/lint_allowlist.txt) or under an
//                              inline allow() stating the invariant
//     lock-wrapper             raw std::mutex / lock_guard / unique_lock
//                              / scoped_lock / condition_variable are
//                              banned in src/ outside util/annotations.hpp
//                              — locking goes through the capability-
//                              annotated util::Mutex/MutexLock so
//                              -Werror=thread-safety actually sees it
//                              (std::condition_variable_any is a distinct
//                              token and stays legal: it waits on the
//                              annotated Mutex directly)
//     rng-stream               in src/core/ (the sharded generator),
//                              Rng::fork() and default-seeded Rng
//                              construction are banned — shard generators
//                              derive via the order-independent
//                              Rng::stream(id) contract
//
//   pass 3  filter  — findings are checked against inline suppressions
//                     and tools/lint_allowlist.txt; *stale* entries of
//                     either kind become findings themselves
//                     (unused-suppression / unused-allowlist), so an
//                     exemption cannot outlive the code it excused.
//
// Inline suppression syntax (same line as the finding, or the line
// directly above it):
//
//     // adsynth-lint: allow(rule-a, rule-b): reason stating the invariant
//
// The reason is mandatory — a suppression that does not say *why* the
// pattern is safe is rejected (suppression-syntax), as is an unknown rule
// name (typos must not silently disable checking).
//
// Machine-readable output: `--json <file>` writes every finding (reported
// and suppressed, with the suppression reason) plus per-rule counts for
// CI annotation; scripts/ci.sh surfaces the counts in its stage table and
// .github/workflows/ci.yml uploads the JSON as an artifact.
//
// Usage:
//   adsynth_lint <repo_root> [--json <file>]   scan mode (tier-1 ctest)
//   adsynth_lint --self-test <fixtures_root>   every rule family must fire
//                                              on the fixture tree, clean/
//                                              and suppressed fixtures must
//                                              stay silent, and a stale
//                                              allowlist must fail
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Findings and suppressions
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string file;  // repo-relative, generic separators
  std::size_t line = 0;
  std::string message;
  // Set on suppressed findings only: how ("inline" / "allowlist") and the
  // documented reason.
  std::string via;
  std::string reason;
};

/// One parsed `// adsynth-lint: allow(...)` directive.
struct Suppression {
  std::set<std::string> rules;
  std::string reason;
  std::size_t line = 0;  // line the comment ends on
  bool used = false;
};

struct AllowEntry {
  std::string rule;
  std::string path_substring;
  std::string line_substring;
  std::string reason;
  std::size_t source_line = 0;
  bool used = false;
};

/// Every rule id the tool can emit.  Directives naming anything else are
/// rejected — a typo must not silently disable checking.
const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "nondeterministic-random", "wall-clock",       "monotonic-clock",
      "unordered-container",     "include-hygiene",  "atomic-ordering",
      "atomic-relaxed",          "lock-wrapper",     "rng-stream",
      "io-error-checked",        "unused-suppression",
      "unused-allowlist",        "suppression-syntax",
  };
  return rules;
}

/// Rules a scan reports on a healthy tree (all of the above minus the
/// meta-rules that only fire on lint-config rot) — the JSON/ci.sh count
/// table lists these in a stable order.
const std::vector<std::string>& countable_rules() {
  static const std::vector<std::string> rules = {
      "nondeterministic-random", "wall-clock",       "monotonic-clock",
      "unordered-container",     "include-hygiene",  "atomic-ordering",
      "atomic-relaxed",          "lock-wrapper",     "rng-stream",
      "io-error-checked",        "unused-suppression",
      "unused-allowlist",        "suppression-syntax",
  };
  return rules;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// ---------------------------------------------------------------------------
// Pass 1: lexer
// ---------------------------------------------------------------------------

enum class TokKind { Ident, Punct, Number, StringLit, CharLit, HeaderName };

struct Tok {
  TokKind kind;
  std::string text;
  std::size_t line;
};

/// One lexed translation unit: the token stream, the raw line text (for
/// allowlist line-substring matching and reports), the suppression
/// directives harvested from comments, and any findings the lexer itself
/// produced (malformed directives).
struct LexedFile {
  std::string rel;
  bool is_header = false;
  std::vector<Tok> toks;
  std::vector<std::string> raw_lines;
  std::vector<Suppression> sups;
  std::vector<Finding> lex_findings;
};

/// Parses `adsynth-lint: allow(rule[, rule]): reason` out of a comment's
/// text.  Malformed directives become suppression-syntax findings — a
/// directive the tool cannot parse must fail loudly, not no-op.
void parse_directive(const std::string& comment, std::size_t end_line,
                     LexedFile& out) {
  const std::string_view marker = "adsynth-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  const std::string body = trim(comment.substr(at + marker.size()));
  auto fail = [&](const std::string& why) {
    out.lex_findings.push_back({"suppression-syntax", out.rel, end_line,
                                "malformed adsynth-lint directive: " + why,
                                "", ""});
  };
  if (body.rfind("allow(", 0) != 0) {
    fail("expected 'allow(<rule>[, <rule>]): <reason>'");
    return;
  }
  const std::size_t close = body.find(')');
  if (close == std::string::npos) {
    fail("missing ')' after allow(");
    return;
  }
  Suppression sup;
  sup.line = end_line;
  std::istringstream rules(body.substr(6, close - 6));
  std::string rule;
  while (std::getline(rules, rule, ',')) {
    rule = trim(rule);
    if (rule.empty()) continue;
    if (known_rules().count(rule) == 0) {
      fail("unknown rule '" + rule + "'");
      return;
    }
    sup.rules.insert(rule);
  }
  if (sup.rules.empty()) {
    fail("allow() names no rules");
    return;
  }
  std::string rest = trim(body.substr(close + 1));
  if (rest.empty() || rest[0] != ':' || trim(rest.substr(1)).empty()) {
    fail("missing reason — state the invariant after 'allow(...):'");
    return;
  }
  sup.reason = trim(rest.substr(1));
  out.sups.push_back(std::move(sup));
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `prefix` + a quote begins a (possibly raw) string/char
/// literal, e.g. R"(..)", u8"..", L'x'.
bool literal_prefix(std::string_view prefix) {
  static const std::set<std::string_view> prefixes = {
      "R", "u8", "u", "U", "L", "u8R", "uR", "UR", "LR"};
  return prefixes.count(prefix) != 0;
}

LexedFile lex_file(const std::string& text, const std::string& rel) {
  LexedFile out;
  out.rel = rel;
  out.is_header = rel.ends_with(".hpp") || rel.ends_with(".h");

  // Raw lines for reports / allowlist line-substring matching.
  {
    std::string cur;
    for (char c : text) {
      if (c == '\n') {
        out.raw_lines.push_back(cur);
        cur.clear();
      } else if (c != '\r') {
        cur.push_back(c);
      }
    }
    out.raw_lines.push_back(cur);
  }

  std::size_t i = 0, line = 1;
  const std::size_t n = text.size();
  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };
  auto bump = [&]() {  // consume one char, tracking the line counter
    if (text[i] == '\n') ++line;
    ++i;
  };
  auto emit = [&](TokKind kind, std::string t, std::size_t at_line) {
    out.toks.push_back(Tok{kind, std::move(t), at_line});
  };

  // Consumes a normal (non-raw) quoted literal; `i` sits on the quote.
  auto lex_quoted = [&](char quote) {
    bump();  // opening quote
    while (i < n) {
      const char c = text[i];
      if (c == '\\' && i + 1 < n) {
        bump();
        bump();
        continue;
      }
      bump();
      if (c == quote || c == '\n') break;  // unterminated: resync at EOL
    }
  };

  // Consumes R"delim( ... )delim"; `i` sits on the opening quote.
  auto lex_raw_string = [&]() {
    bump();  // quote
    std::string delim;
    while (i < n && text[i] != '(' && text[i] != '\n' && delim.size() < 16) {
      delim.push_back(text[i]);
      bump();
    }
    if (i < n && text[i] == '(') bump();
    const std::string closer = ")" + delim + "\"";
    while (i < n) {
      if (text.compare(i, closer.size(), closer) == 0) {
        for (std::size_t k = 0; k < closer.size(); ++k) bump();
        return;
      }
      bump();
    }
  };

  while (i < n) {
    const char c = text[i];
    // --- whitespace / line splices ------------------------------------
    if (std::isspace(static_cast<unsigned char>(c))) {
      bump();
      continue;
    }
    if (c == '\\' && peek(1) == '\n') {
      bump();
      bump();
      continue;
    }
    // --- comments (harvest directives, emit nothing) ------------------
    if (c == '/' && peek(1) == '/') {
      std::string body;
      while (i < n && text[i] != '\n') {
        body.push_back(text[i]);
        bump();
      }
      parse_directive(body, line, out);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::string body;
      bump();
      bump();
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        body.push_back(text[i]);
        bump();
      }
      if (i < n) {
        bump();
        bump();
      }
      parse_directive(body, line, out);
      continue;
    }
    // --- literals ------------------------------------------------------
    if (c == '"') {
      const std::size_t at = line;
      lex_quoted('"');
      emit(TokKind::StringLit, "\"\"", at);
      continue;
    }
    if (c == '\'') {
      const std::size_t at = line;
      lex_quoted('\'');
      emit(TokKind::CharLit, "''", at);
      continue;
    }
    // --- identifiers (may be a literal prefix) -------------------------
    if (ident_start(c)) {
      const std::size_t at = line;
      std::string id;
      while (i < n && ident_char(text[i])) {
        id.push_back(text[i]);
        bump();
      }
      if (i < n && (text[i] == '"' || text[i] == '\'') &&
          literal_prefix(id)) {
        const char quote = text[i];
        if (quote == '"' && id.back() == 'R') {
          lex_raw_string();
        } else {
          lex_quoted(quote);
        }
        emit(quote == '\'' ? TokKind::CharLit : TokKind::StringLit, id, at);
        continue;
      }
      emit(TokKind::Ident, std::move(id), at);
      // #include <header-name>: consume the <...> as one token so the
      // header path cannot fire identifier rules.
      if (out.toks.size() >= 2 && out.toks.back().text == "include" &&
          out.toks[out.toks.size() - 2].text == "#") {
        std::size_t j = i;
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && text[j] == '<') {
          while (i < j) bump();
          std::string name;
          while (i < n && text[i] != '>' && text[i] != '\n') {
            name.push_back(text[i]);
            bump();
          }
          if (i < n && text[i] == '>') {
            name.push_back('>');
            bump();
          }
          emit(TokKind::HeaderName, std::move(name), line);
        }
      }
      continue;
    }
    // --- numbers (incl. 0x..., digit separators, exponents) ------------
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t at = line;
      std::string num;
      while (i < n) {
        const char d = text[i];
        if (ident_char(d) || d == '\'' || d == '.') {
          num.push_back(d);
          bump();
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty()) {
          const char e = num.back();
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            num.push_back(d);
            bump();
            continue;
          }
        }
        break;
      }
      emit(TokKind::Number, std::move(num), at);
      continue;
    }
    // --- punctuation (:: and -> matter for the rules) -------------------
    {
      const std::size_t at = line;
      if (c == ':' && peek(1) == ':') {
        bump();
        bump();
        emit(TokKind::Punct, "::", at);
      } else if (c == '-' && peek(1) == '>') {
        bump();
        bump();
        emit(TokKind::Punct, "->", at);
      } else {
        bump();
        emit(TokKind::Punct, std::string(1, c), at);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: rule families
// ---------------------------------------------------------------------------

/// True when toks[i] is qualified as std::<tok> (possibly ::std::<tok>).
bool std_qualified(const std::vector<Tok>& t, std::size_t i) {
  return i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == TokKind::Ident &&
         t[i - 2].text == "std";
}

bool member_access(const std::vector<Tok>& t, std::size_t i) {
  return i >= 1 && (t[i - 1].text == "." || t[i - 1].text == "->");
}

bool call_follows(const std::vector<Tok>& t, std::size_t i) {
  return i + 1 < t.size() && t[i + 1].text == "(";
}

void add(std::vector<Finding>& out, const char* rule, const LexedFile& f,
         std::size_t line, std::string message) {
  out.push_back({rule, f.rel, line, std::move(message), "", ""});
}

/// nondeterministic-random: the only sanctioned randomness is util::Rng
/// (xoshiro256** + explicit seeds); stdlib engines/distributions are
/// implementation-defined across platforms and random_device defeats
/// seeded reproduction.
void rule_random(const LexedFile& f, std::vector<Finding>& out) {
  if (contains(f.rel, "util/rng")) return;
  static const std::set<std::string_view> kBare = {
      "random_device",          "mt19937",
      "mt19937_64",             "minstd_rand",
      "minstd_rand0",           "default_random_engine",
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution",    "bernoulli_distribution",
      "discrete_distribution",  "poisson_distribution",
      "geometric_distribution",
  };
  static const std::set<std::string_view> kStdOnly = {"rand", "srand",
                                                      "shuffle"};
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kBare.count(t[i].text)) {
      add(out, "nondeterministic-random", f, t[i].line,
          "'" + t[i].text + "' — use util::Rng with an explicit seed");
    } else if (kStdOnly.count(t[i].text) && std_qualified(t, i)) {
      add(out, "nondeterministic-random", f, t[i].line,
          "'std::" + t[i].text + "' — use util::Rng (Rng::shuffle for "
          "reproducible shuffles)");
    }
  }
}

/// wall-clock: deterministic outputs must not embed clock state; benches
/// measure through util::Stopwatch (src/util/timer.*).
void rule_wall_clock(const LexedFile& f, std::vector<Finding>& out) {
  if (contains(f.rel, "util/timer")) return;
  static const std::set<std::string_view> kBare = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime", "localtime_r",
      "gmtime",       "gmtime_r",      "strftime",  "timespec_get",
  };
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kBare.count(t[i].text)) {
      add(out, "wall-clock", f, t[i].line,
          "'" + t[i].text + "' — time through util::Stopwatch / "
          "util::monotonic_ns()");
    } else if (t[i].text == "time" && std_qualified(t, i) &&
               call_follows(t, i)) {
      add(out, "wall-clock", f, t[i].line,
          "'std::time(' — wall-clock state in outputs");
    }
  }
}

/// monotonic-clock: narrower than wall-clock — the *call*.  Every
/// monotonic read flows through util::monotonic_ns() so Stopwatch and the
/// tracing spans share one clock.
void rule_monotonic(const LexedFile& f, std::vector<Finding>& out) {
  if (contains(f.rel, "util/timer")) return;
  const auto& t = f.toks;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind == TokKind::Ident && t[i].text == "now" &&
        t[i - 1].text == "::" && t[i - 2].text == "steady_clock" &&
        call_follows(t, i)) {
      add(out, "monotonic-clock", f, t[i].line,
          "'steady_clock::now(' — read the monotonic clock through "
          "util::monotonic_ns()");
    }
  }
}

/// unordered-container: hot-path reductions in analytics/defense must be
/// iteration-order independent; every use needs a documented exemption.
void rule_unordered(const LexedFile& f, std::vector<Finding>& out) {
  if (!contains(f.rel, "analytics/") && !contains(f.rel, "defense/")) return;
  static const std::set<std::string_view> kBanned = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const Tok& tok : f.toks) {
    if (tok.kind == TokKind::Ident && kBanned.count(tok.text)) {
      add(out, "unordered-container", f, tok.line,
          "'" + tok.text + "' — iteration order is implementation-defined; "
          "reductions here must be order-independent (allow with a reason "
          "if deliberate)");
    }
  }
}

/// include-hygiene: every header carries #pragma once and never declares
/// `using namespace` (it would leak into every includer).
void rule_include_hygiene(const LexedFile& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  const auto& t = f.toks;
  bool pragma_once = false;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 1].text == "namespace") {
      add(out, "include-hygiene", f, t[i].line,
          "'using namespace' in a header leaks into every includer");
    }
    if (i >= 1 && t[i - 1].text == "#" && t[i].text == "pragma" &&
        t[i + 1].text == "once") {
      pragma_once = true;
    }
  }
  if (!pragma_once) {
    add(out, "include-hygiene", f, 1, "header is missing '#pragma once'");
  }
}

/// atomic-ordering / atomic-relaxed: every std::atomic operation in the
/// concurrency substrate (src/graphdb/, src/util/) spells its
/// memory_order, and memory_order_relaxed needs a stated invariant — the
/// relaxed fast paths of util/metrics and util/trace are allowlisted in
/// tools/lint_allowlist.txt, everything else suppresses inline.
///
/// Heuristic scope: member calls `x.load(...)` / `x->fetch_add(...)` on
/// the std::atomic method names.  Operator forms (++ / -- / implicit
/// conversion) are invisible to a token matcher; the repo convention is
/// to never use them on atomics, and review enforces that half.
void rule_atomic(const LexedFile& f, std::vector<Finding>& out) {
  if (!contains(f.rel, "src/graphdb/") && !contains(f.rel, "src/util/"))
    return;
  static const std::set<std::string_view> kAtomicOps = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !kAtomicOps.count(t[i].text)) continue;
    if (!member_access(t, i) || !call_follows(t, i)) continue;
    // Walk the balanced argument list looking for a memory_order token.
    bool has_order = false;
    bool relaxed = false;
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") {
        ++depth;
      } else if (t[j].text == ")") {
        if (--depth == 0) break;
      } else if (t[j].kind == TokKind::Ident) {
        if (t[j].text == "memory_order" ||
            t[j].text.rfind("memory_order_", 0) == 0) {
          has_order = true;
        }
        if (t[j].text == "memory_order_relaxed" ||
            (t[j].text == "relaxed" && j >= 2 && t[j - 1].text == "::" &&
             t[j - 2].text == "memory_order")) {
          relaxed = true;
        }
      }
    }
    if (!has_order) {
      add(out, "atomic-ordering", f, t[i].line,
          "atomic '" + t[i].text + "' without an explicit memory_order — "
          "spell the ordering (seq_cst included) so the audit can see the "
          "intent");
    } else if (relaxed) {
      add(out, "atomic-relaxed", f, t[i].line,
          "memory_order_relaxed on '" + t[i].text + "' outside an "
          "allowlisted counter fast path — state the invariant via "
          "allow(atomic-relaxed)");
    }
  }
}

/// lock-wrapper: raw std locking primitives are invisible to Clang's
/// thread-safety analysis.  All locking in src/ goes through the
/// capability-annotated util::Mutex / util::MutexLock
/// (src/util/annotations.hpp, the one exempt file).
/// std::condition_variable_any is a distinct identifier and stays legal —
/// it waits on the annotated Mutex directly.
void rule_lock_wrapper(const LexedFile& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/", 0) != 0) return;
  if (contains(f.rel, "util/annotations.hpp")) return;
  static const std::set<std::string_view> kBanned = {
      "mutex",         "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",  "shared_timed_mutex",
      "lock_guard",    "unique_lock",
      "scoped_lock",   "shared_lock",
      "condition_variable",
  };
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::Ident && kBanned.count(t[i].text) &&
        std_qualified(t, i)) {
      add(out, "lock-wrapper", f, t[i].line,
          "raw 'std::" + t[i].text + "' — lock through util::Mutex / "
          "util::MutexLock (util/annotations.hpp) so -Werror=thread-safety "
          "sees it");
    }
  }
}

/// rng-stream: sharded generator stages (src/core/) must derive their
/// generators with Rng::stream(id) — a pure function of (seed, id) that
/// is independent of draw order — never Rng::fork() (child state depends
/// on the parent's draw count) or a default-seeded Rng.
void rule_rng_stream(const LexedFile& f, std::vector<Finding>& out) {
  if (!contains(f.rel, "src/core/")) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (t[i].text == "fork" && member_access(t, i) && call_follows(t, i)) {
      add(out, "rng-stream", f, t[i].line,
          "Rng::fork() is draw-order dependent — derive shard generators "
          "with Rng::stream(id)");
    }
    if (t[i].text == "Rng") {
      // Rng() / Rng{}: explicit default construction.
      if (i + 2 < t.size() &&
          ((t[i + 1].text == "(" && t[i + 2].text == ")") ||
           (t[i + 1].text == "{" && t[i + 2].text == "}"))) {
        add(out, "rng-stream", f, t[i].line,
            "default-seeded Rng — generator streams must derive from the "
            "config seed (Rng::stream(id) or an explicit seed)");
      }
      // `Rng name;`: a declaration that silently takes the default seed.
      if (i + 2 < t.size() && t[i + 1].kind == TokKind::Ident &&
          t[i + 2].text == ";") {
        add(out, "rng-stream", f, t[i].line,
            "'Rng " + t[i + 1].text + ";' default-initializes the seed — "
            "construct from the config seed or a stream(id) derivation");
      }
    }
  }
}

/// io-error-checked: raw C stdio / libc file calls must consume their
/// results — a discarded fwrite/fflush/fclose turns a full disk into
/// silent snapshot/WAL corruption.  The durable-storage path funnels
/// through util::CheckedFile (src/util/binio.*), which branches on every
/// call; code that reaches for stdio directly must do the same.  Scope:
/// bare or std::-qualified calls whose result is dropped in statement
/// position (or cast to void).  `fs::remove` / member `.remove()` are
/// different APIs and stay legal.
void rule_io_checked(const LexedFile& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/", 0) != 0 && f.rel.rfind("bench/", 0) != 0) return;
  static const std::set<std::string_view> kOps = {
      "fopen",  "fread",  "fwrite", "fseek",  "ftell",
      "fflush", "fclose", "fgets",  "remove", "rename",
  };
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || kOps.count(t[i].text) == 0) continue;
    if (!call_follows(t, i) || member_access(t, i)) continue;
    const bool qualified = std_qualified(t, i);
    // Any non-std qualifier (fs::remove, detail::rename, ...) is another
    // API with its own error contract.
    if (!qualified && i >= 1 && t[i - 1].text == "::") continue;
    const std::size_t first = qualified ? i - 2 : i;  // `std` of std::op
    // Discarded when the call opens a statement — or is cast to (void),
    // which silences the compiler but not a torn write.
    bool discarded = first == 0;
    if (!discarded) {
      const std::string& prev = t[first - 1].text;
      discarded = prev == ";" || prev == "{" || prev == "}";
      if (!discarded && prev == ")" && first >= 3 &&
          t[first - 2].text == "void" && t[first - 3].text == "(") {
        discarded = true;
      }
    }
    if (discarded) {
      add(out, "io-error-checked", f, t[i].line,
          "'" + std::string(qualified ? "std::" : "") + t[i].text +
              "' result discarded — branch on it (short write / failed "
              "flush / failed close must not pass silently; see "
              "util::CheckedFile)");
    }
  }
}

void run_rules(const LexedFile& f, std::vector<Finding>& out) {
  rule_random(f, out);
  rule_wall_clock(f, out);
  rule_monotonic(f, out);
  rule_unordered(f, out);
  rule_include_hygiene(f, out);
  rule_atomic(f, out);
  rule_lock_wrapper(f, out);
  rule_rng_stream(f, out);
  rule_io_checked(f, out);
  for (const Finding& lf : f.lex_findings) out.push_back(lf);
}

// ---------------------------------------------------------------------------
// Pass 3: suppression / allowlist filtering
// ---------------------------------------------------------------------------

std::vector<AllowEntry> load_allowlist(const fs::path& path,
                                       std::vector<std::string>* errors) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    AllowEntry entry;
    entry.source_line = lineno;
    std::istringstream fields(line);
    if (!std::getline(fields, entry.rule, '|') ||
        !std::getline(fields, entry.path_substring, '|') ||
        !std::getline(fields, entry.line_substring, '|') ||
        !std::getline(fields, entry.reason)) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": want 'rule|path|line-substring|reason'");
      continue;
    }
    if (known_rules().count(entry.rule) == 0) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": unknown rule '" + entry.rule + "'");
      continue;
    }
    if (entry.reason.empty()) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": empty reason — justify the exemption");
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

struct PipelineResult {
  std::size_t files_scanned = 0;
  std::vector<Finding> reported;    // survived filtering — these fail the run
  std::vector<Finding> suppressed;  // filtered, with via/reason recorded
  std::vector<std::string> errors;  // allowlist parse errors
  std::map<std::string, std::size_t> rule_counts;  // reported, by rule
};

/// The whole lint: lex every source file under root/{subdirs}, run the
/// rule families, filter through inline suppressions + the allowlist,
/// then flag stale entries of either kind as findings in their own right.
PipelineResult run_pipeline(const fs::path& root,
                            const std::vector<std::string>& subdirs,
                            const fs::path& allowlist_path) {
  PipelineResult result;
  std::vector<AllowEntry> allow =
      load_allowlist(allowlist_path, &result.errors);

  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source_file(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  result.files_scanned = files.size();

  for (const fs::path& file : files) {
    const std::string rel = fs::relative(file, root).generic_string();
    LexedFile lexed = lex_file(read_file(file), rel);
    std::vector<Finding> raw;
    run_rules(lexed, raw);

    for (Finding& f : raw) {
      // Inline suppression: same line as the finding or the line above.
      bool done = false;
      for (Suppression& sup : lexed.sups) {
        if (sup.rules.count(f.rule) == 0) continue;
        if (f.line != sup.line && f.line != sup.line + 1) continue;
        sup.used = true;
        f.via = "inline";
        f.reason = sup.reason;
        result.suppressed.push_back(std::move(f));
        done = true;
        break;
      }
      if (done) continue;
      // Allowlist: rule + path substring + optional line substring.
      const std::string& line_text =
          f.line >= 1 && f.line <= lexed.raw_lines.size()
              ? lexed.raw_lines[f.line - 1]
              : lexed.raw_lines.empty() ? std::string() : lexed.raw_lines[0];
      for (AllowEntry& entry : allow) {
        if (entry.rule != f.rule) continue;
        if (!contains(f.file, entry.path_substring)) continue;
        if (!entry.line_substring.empty() &&
            !contains(line_text, entry.line_substring)) {
          continue;
        }
        entry.used = true;
        f.via = "allowlist";
        f.reason = entry.reason;
        result.suppressed.push_back(std::move(f));
        done = true;
        break;
      }
      if (!done) result.reported.push_back(std::move(f));
    }

    // A suppression no finding consumed is rot: either the violation was
    // fixed (delete the comment) or the comment is in the wrong place.
    for (const Suppression& sup : lexed.sups) {
      if (sup.used) continue;
      std::string rules;
      for (const std::string& r : sup.rules) {
        if (!rules.empty()) rules += ", ";
        rules += r;
      }
      result.reported.push_back(
          {"unused-suppression", rel, sup.line,
           "stale allow(" + rules + ") — no matching finding here; delete "
           "the suppression or move it next to the violation",
           "", ""});
    }
  }

  // Same policy for the allowlist: stale entries fail the run.
  const std::string allow_rel = allowlist_path.generic_string();
  for (const AllowEntry& entry : allow) {
    if (entry.used) continue;
    result.reported.push_back(
        {"unused-allowlist", allow_rel, entry.source_line,
         "stale allowlist entry '" + entry.rule + "|" + entry.path_substring +
             "|" + entry.line_substring + "' matched no finding — delete it",
         "", ""});
  }

  auto order = [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  };
  std::sort(result.reported.begin(), result.reported.end(), order);
  std::sort(result.suppressed.begin(), result.suppressed.end(), order);
  for (const std::string& rule : countable_rules()) result.rule_counts[rule];
  for (const Finding& f : result.reported) ++result.rule_counts[f.rule];
  return result;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable findings for CI annotation ({"version": 2, ...}); the
/// schema is documented in DESIGN.md §3e.
void write_json(std::ostream& out, const PipelineResult& r) {
  out << "{\n  \"version\": 2,\n  \"files_scanned\": " << r.files_scanned
      << ",\n  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : r.rule_counts) {
    out << (first ? "" : ", ") << "\"" << rule << "\": " << count;
    first = false;
  }
  out << "},\n  \"findings\": [";
  first = true;
  for (const Finding& f : r.reported) {
    out << (first ? "\n" : ",\n") << "    {\"rule\": \"" << f.rule
        << "\", \"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"message\": \""
        << json_escape(f.message) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"suppressed\": [";
  first = true;
  for (const Finding& f : r.suppressed) {
    out << (first ? "\n" : ",\n") << "    {\"rule\": \"" << f.rule
        << "\", \"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"via\": \"" << f.via
        << "\", \"reason\": \"" << json_escape(f.reason) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
}

/// One stable stdout line with per-rule counts — scripts/ci.sh lifts it
/// into the PASS/FAIL stage table.
void print_rule_counts(const PipelineResult& r) {
  std::cout << "adsynth_lint: rule-counts files=" << r.files_scanned
            << " total=" << r.reported.size();
  for (const std::string& rule : countable_rules()) {
    std::cout << " " << rule << "=" << r.rule_counts.at(rule);
  }
  std::cout << "\n";
}

int run_scan(const fs::path& root, const fs::path& json_path) {
  const PipelineResult result = run_pipeline(
      root, {"src", "bench"}, root / "tools" / "lint_allowlist.txt");
  for (const std::string& e : result.errors) {
    std::cerr << "adsynth_lint: " << e << "\n";
  }
  for (const Finding& f : result.reported) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    write_json(out, result);
    if (!out) {
      std::cerr << "adsynth_lint: cannot write " << json_path << "\n";
      return 2;
    }
  }
  print_rule_counts(result);
  if (!result.reported.empty() || !result.errors.empty()) {
    std::cerr << "adsynth_lint: " << result.reported.size()
              << " violation(s) across " << result.files_scanned
              << " file(s)\n";
    return 1;
  }
  std::cout << "adsynth_lint: OK (" << result.files_scanned
            << " files clean, " << result.suppressed.size()
            << " documented suppression(s))\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

/// Proves every rule family fires on the planted fixtures, clean/ and
/// suppressed fixtures stay silent, the fixture allowlist entry is
/// consumed, and a stale allowlist fails the run — the lint lints itself.
int run_self_test(const fs::path& fixtures) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    std::cout << "self-test: " << (cond ? "ok" : "FAIL") << " — " << what
              << "\n";
    if (!cond) ok = false;
  };

  const PipelineResult run = run_pipeline(
      fixtures, {"src", "bench"}, fixtures / "lint_allowlist.txt");
  check(run.files_scanned > 0, "fixture tree is non-empty");
  for (const std::string& e : run.errors) {
    std::cerr << "self-test: allowlist error: " << e << "\n";
    ok = false;
  }

  // Every rule family must fire at least once on the planted fixtures.
  const std::vector<std::string> expected = {
      "nondeterministic-random", "wall-clock",      "monotonic-clock",
      "unordered-container",     "include-hygiene", "atomic-ordering",
      "atomic-relaxed",          "lock-wrapper",    "rng-stream",
      "io-error-checked",        "unused-suppression",
  };
  for (const std::string& rule : expected) {
    const std::size_t n = run.rule_counts.at(rule);
    std::cout << "self-test: rule " << rule << " fired " << n << "x\n";
    if (n == 0) {
      std::cerr << "self-test: rule " << rule
                << " never fired on the fixtures\n";
      ok = false;
    }
  }

  // clean/ fixtures plant banned tokens in comments, strings and near-miss
  // identifiers; any finding there is a lexer/rule false positive.
  for (const Finding& f : run.reported) {
    if (contains(f.file, "clean/")) {
      std::cerr << "self-test: unexpected finding in clean fixture "
                << f.file << ":" << f.line << " [" << f.rule << "] "
                << f.message << "\n";
      ok = false;
    }
  }

  // The suppressed_ok fixture carries a real violation under an inline
  // allow(): it must produce zero reported findings AND a recorded
  // suppression (proof the rule did fire and the directive intercepted it).
  bool suppressed_fixture_hit = false;
  for (const Finding& f : run.suppressed) {
    if (contains(f.file, "suppressed_ok") && f.via == "inline") {
      suppressed_fixture_hit = true;
    }
  }
  for (const Finding& f : run.reported) {
    if (contains(f.file, "suppressed_ok")) {
      std::cerr << "self-test: suppression failed to intercept " << f.file
                << ":" << f.line << " [" << f.rule << "]\n";
      ok = false;
    }
  }
  check(suppressed_fixture_hit,
        "inline allow() intercepted the suppressed_ok violation");

  // Same proof for the allowlist path.
  bool allowlisted_hit = false;
  for (const Finding& f : run.suppressed) {
    if (contains(f.file, "allowlisted_relaxed") && f.via == "allowlist") {
      allowlisted_hit = true;
    }
  }
  check(allowlisted_hit,
        "allowlist entry intercepted the allowlisted_relaxed violation");
  check(run.rule_counts.at("unused-allowlist") == 0,
        "fixture allowlist has no stale entries");

  // Negative test: a stale allowlist entry must fail a run on its own.
  const PipelineResult stale = run_pipeline(
      fixtures, {"src", "bench"}, fixtures / "stale_allowlist.txt");
  check(stale.rule_counts.at("unused-allowlist") > 0,
        "stale allowlist entry is reported as unused-allowlist");

  std::cout << (ok ? "adsynth_lint self-test: OK\n"
                   : "adsynth_lint self-test: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--self-test") {
    return run_self_test(fs::path(args[1]));
  }
  if (!args.empty() && args[0] != "--self-test") {
    fs::path root = args[0];
    fs::path json_path;
    bool bad = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json" && i + 1 < args.size()) {
        json_path = args[++i];
      } else {
        bad = true;
      }
    }
    if (!bad) return run_scan(root, json_path);
  }
  std::cerr << "usage: adsynth_lint <repo_root> [--json <file>]\n"
               "       adsynth_lint --self-test <fixtures_root>\n";
  return 2;
}
