// adsynth_lint — repo-invariant / determinism lint for the ADSynth tree.
//
// The reproduction's headline guarantees are *determinism* properties:
// identical seeds produce identical graphs, parallel reductions are
// bit-identical at any thread count, and rollback restores stores exactly.
// Those guarantees die quietly when someone reaches for std::rand, seeds
// from random_device, renders a wall-clock timestamp into an output file,
// or folds a floating-point reduction over an unordered container whose
// iteration order is implementation-defined.  This tool walks src/ and
// bench/ and fails (as a tier-1 ctest) on exactly those patterns:
//
//   nondeterministic-random  std::rand / srand / random_device / mt19937 /
//                            <random> distributions / std::shuffle anywhere
//                            outside src/util/rng.*.  util::Rng (xoshiro256**
//                            + explicit seeds) is the only sanctioned source
//                            of randomness; stdlib distributions are
//                            implementation-defined across platforms.
//   wall-clock               system_clock / steady_clock / ::time() /
//                            gettimeofday / localtime / strftime outside
//                            src/util/timer.* — deterministic outputs must
//                            not embed wall-clock state; benches measure
//                            through util::Stopwatch.
//   monotonic-clock          direct steady_clock::now( calls outside
//                            src/util/timer.* and src/util/trace.* — every
//                            monotonic read flows through util::monotonic_ns
//                            so Stopwatch and the tracing spans share one
//                            clock and outputs never embed raw clock state.
//   unordered-container      unordered_map/unordered_set in src/analytics/
//                            or src/defense/: hot-path reductions there must
//                            be iteration-order independent, so every use
//                            needs an allowlist entry with a justification.
//   include-hygiene          every src/ header carries #pragma once and no
//                            header declares `using namespace`.
//
// Matching runs on comment-stripped text, so prose mentioning a banned
// token does not fire.  Findings are suppressed by
// tools/lint_allowlist.txt entries of the form
//     rule|path-substring|line-substring|reason
// (all four fields required; the reason is mandatory documentation).
//
// Usage:
//   adsynth_lint <repo_root>              scan mode (the tier-1 ctest)
//   adsynth_lint --self-test <fixtures>   verify every rule fires on the
//                                         fixture tree and that clean/
//                                         fixtures stay silent
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string rule;
  std::string file;   // repo-relative, generic separators
  std::size_t line = 0;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_substring;
  std::string line_substring;
  std::string reason;
};

struct TokenRule {
  const char* rule;
  const char* token;
  const char* why;
};

// Tokens are matched as substrings of comment-stripped lines.  Keep them
// specific enough that identifiers like `runtime(` cannot collide.
constexpr TokenRule kRandomTokens[] = {
    {"nondeterministic-random", "std::rand", "use util::Rng"},
    {"nondeterministic-random", "srand(", "use util::Rng with an explicit seed"},
    {"nondeterministic-random", "random_device",
     "seeds must be explicit and reproducible"},
    {"nondeterministic-random", "mt19937", "use util::Rng (xoshiro256**)"},
    {"nondeterministic-random", "minstd_rand", "use util::Rng"},
    {"nondeterministic-random", "uniform_int_distribution",
     "stdlib distributions differ across implementations; use Rng::uniform"},
    {"nondeterministic-random", "uniform_real_distribution",
     "stdlib distributions differ across implementations; use Rng::real"},
    {"nondeterministic-random", "normal_distribution",
     "stdlib distributions differ across implementations"},
    {"nondeterministic-random", "bernoulli_distribution",
     "stdlib distributions differ across implementations; use Rng::chance"},
    {"nondeterministic-random", "std::shuffle",
     "std::shuffle's swap sequence is unspecified; use Rng::shuffle"},
};

constexpr TokenRule kWallClockTokens[] = {
    {"wall-clock", "system_clock", "wall-clock state in outputs"},
    {"wall-clock", "steady_clock", "time through util::Stopwatch"},
    {"wall-clock", "high_resolution_clock", "time through util::Stopwatch"},
    {"wall-clock", "std::time(", "wall-clock state in outputs"},
    {"wall-clock", "time(nullptr)", "wall-clock state in outputs"},
    {"wall-clock", "time(NULL)", "wall-clock state in outputs"},
    {"wall-clock", "gettimeofday", "wall-clock state in outputs"},
    {"wall-clock", "clock_gettime", "wall-clock state in outputs"},
    {"wall-clock", "localtime", "wall-clock state in outputs"},
    {"wall-clock", "gmtime(", "wall-clock state in outputs"},
    {"wall-clock", "strftime", "wall-clock state in outputs"},
};

// Narrower than wall-clock: catches the *call*, not just the type name, and
// additionally exempts util/trace (whose static_assert on is_steady needs
// the type name but never reads the clock directly).
constexpr TokenRule kMonotonicTokens[] = {
    {"monotonic-clock", "steady_clock::now(",
     "read the monotonic clock through util::monotonic_ns()"},
};

constexpr TokenRule kUnorderedTokens[] = {
    {"unordered-container", "unordered_map",
     "iteration order is implementation-defined; hot-path reductions in "
     "analytics/defense must be order-independent (allowlist with reason if "
     "deliberate)"},
    {"unordered-container", "unordered_set",
     "iteration order is implementation-defined; hot-path reductions in "
     "analytics/defense must be order-independent (allowlist with reason if "
     "deliberate)"},
};

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Strips // and /* */ comments, preserving line structure so findings
/// keep their real line numbers.  String literals are kept verbatim —
/// close enough for token matching, and a banned token smuggled into a
/// string is worth a look anyway.
std::vector<std::string> comment_stripped_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  bool in_block_comment = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      continue;
    }
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (c == '/' && next == '/') {
      // Skip to end of line (the '\n' branch above still records it).
      while (i + 1 < text.size() && text[i + 1] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool is_header(const std::string& rel) {
  return rel.size() > 2 && (rel.ends_with(".hpp") || rel.ends_with(".h"));
}

void scan_file(const fs::path& path, const std::string& rel,
               std::vector<Finding>& findings) {
  const std::string text = read_file(path);
  const std::vector<std::string> lines = comment_stripped_lines(text);
  const bool rng_exempt = contains(rel, "util/rng");
  const bool timer_exempt = contains(rel, "util/timer");
  const bool monotonic_exempt = timer_exempt || contains(rel, "util/trace");
  const bool ordered_zone =
      contains(rel, "analytics/") || contains(rel, "defense/");

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (!rng_exempt) {
      for (const TokenRule& t : kRandomTokens) {
        if (contains(line, t.token)) {
          findings.push_back({t.rule, rel, i + 1,
                              std::string("banned token '") + t.token +
                                  "' (" + t.why + ")"});
        }
      }
    }
    if (!timer_exempt) {
      for (const TokenRule& t : kWallClockTokens) {
        if (contains(line, t.token)) {
          findings.push_back({t.rule, rel, i + 1,
                              std::string("banned token '") + t.token +
                                  "' (" + t.why + ")"});
        }
      }
    }
    if (!monotonic_exempt) {
      for (const TokenRule& t : kMonotonicTokens) {
        if (contains(line, t.token)) {
          findings.push_back({t.rule, rel, i + 1,
                              std::string("banned token '") + t.token +
                                  "' (" + t.why + ")"});
        }
      }
    }
    if (ordered_zone) {
      for (const TokenRule& t : kUnorderedTokens) {
        if (contains(line, t.token)) {
          findings.push_back({t.rule, rel, i + 1,
                              std::string("'") + t.token + "' (" + t.why +
                                  ")"});
        }
      }
    }
    if (is_header(rel) && contains(line, "using namespace")) {
      findings.push_back({"include-hygiene", rel, i + 1,
                          "'using namespace' in a header leaks into every "
                          "includer"});
    }
  }

  if (is_header(rel)) {
    bool has_pragma_once = false;
    for (const std::string& line : lines) {
      if (contains(line, "#pragma once")) {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      findings.push_back(
          {"include-hygiene", rel, 1, "header is missing '#pragma once'"});
    }
  }
}

std::vector<Finding> scan_tree(const fs::path& root,
                               const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned) {
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source_file(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  // Deterministic report order regardless of directory enumeration order.
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const std::string rel =
        fs::relative(file, root).generic_string();
    scan_file(file, rel, findings);
  }
  if (files_scanned != nullptr) *files_scanned = files.size();
  return findings;
}

std::vector<AllowEntry> load_allowlist(const fs::path& path,
                                       std::vector<std::string>* errors) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    AllowEntry entry;
    std::istringstream fields(line);
    if (!std::getline(fields, entry.rule, '|') ||
        !std::getline(fields, entry.path_substring, '|') ||
        !std::getline(fields, entry.line_substring, '|') ||
        !std::getline(fields, entry.reason)) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": want 'rule|path|line-substring|reason'");
      continue;
    }
    if (entry.reason.empty()) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": empty reason — justify the exemption");
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

bool suppressed(const Finding& f, const std::string& line_text,
                const std::vector<AllowEntry>& allow) {
  for (const AllowEntry& entry : allow) {
    if (entry.rule != f.rule) continue;
    if (!contains(f.file, entry.path_substring)) continue;
    if (!entry.line_substring.empty() &&
        !contains(line_text, entry.line_substring)) {
      continue;
    }
    return true;
  }
  return false;
}

int run_scan(const fs::path& root) {
  std::vector<std::string> errors;
  const std::vector<AllowEntry> allow =
      load_allowlist(root / "tools" / "lint_allowlist.txt", &errors);
  for (const std::string& e : errors) {
    std::cerr << "adsynth_lint: " << e << "\n";
  }

  std::size_t files_scanned = 0;
  std::vector<Finding> findings =
      scan_tree(root, {"src", "bench"}, &files_scanned);

  std::size_t reported = 0;
  for (const Finding& f : findings) {
    // Reload the offending line for allowlist line-substring matching and
    // for the report; lint runs are rare enough that re-reading is fine.
    std::string line_text;
    {
      std::ifstream in(root / f.file);
      for (std::size_t i = 0; i < f.line && std::getline(in, line_text); ++i) {
      }
    }
    if (suppressed(f, line_text, allow)) continue;
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    ++reported;
  }
  if (reported > 0 || !errors.empty()) {
    std::cerr << "adsynth_lint: " << reported << " violation(s) across "
              << files_scanned << " file(s)\n";
    return 1;
  }
  std::cout << "adsynth_lint: OK (" << files_scanned << " files clean)\n";
  return 0;
}

int run_self_test(const fs::path& fixtures) {
  std::size_t files_scanned = 0;
  const std::vector<Finding> findings =
      scan_tree(fixtures, {"src", "bench"}, &files_scanned);
  if (files_scanned == 0) {
    std::cerr << "adsynth_lint --self-test: no fixture files under "
              << fixtures << "\n";
    return 1;
  }

  const std::set<std::string> expected = {
      "nondeterministic-random", "wall-clock", "monotonic-clock",
      "unordered-container", "include-hygiene"};
  std::map<std::string, std::size_t> fired;
  bool clean_dir_violated = false;
  for (const Finding& f : findings) {
    ++fired[f.rule];
    // clean/ fixtures exist to prove comment-stripping and exemptions do
    // not false-positive; any finding there is a lint bug.
    if (contains(f.file, "clean/")) {
      std::cerr << "self-test: unexpected finding in clean fixture "
                << f.file << ":" << f.line << " [" << f.rule << "] "
                << f.message << "\n";
      clean_dir_violated = true;
    }
  }

  bool ok = !clean_dir_violated;
  for (const std::string& rule : expected) {
    const std::size_t count = fired.count(rule) ? fired.at(rule) : 0;
    std::cout << "self-test: rule " << rule << " fired " << count << "x\n";
    if (count == 0) {
      std::cerr << "self-test: rule " << rule
                << " never fired on the fixtures\n";
      ok = false;
    }
  }
  std::cout << (ok ? "adsynth_lint self-test: OK\n"
                   : "adsynth_lint self-test: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--self-test") {
    return run_self_test(fs::path(argv[2]));
  }
  if (argc == 2) {
    return run_scan(fs::path(argv[1]));
  }
  std::cerr << "usage: adsynth_lint <repo_root>\n"
               "       adsynth_lint --self-test <fixtures_root>\n";
  return 2;
}
